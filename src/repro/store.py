"""Content-addressed on-disk store for measurement artifacts.

Every expensive measurement in this library is a pure function of
``(graph, algorithm, parameters)``: the mixing profile of a graph at
fixed walk lengths, its SLEM, its core structure, an envelope-expansion
sweep, a GateKeeper table row.  This module caches those results on
disk under a *content-addressed* key so repeated invocations — warm
CLI runs, repeated experiment sweeps, resumed pipelines — skip the
recomputation entirely:

``key = H(graph digest | stage name | canonical params | versions)``

* The **graph digest** is a SHA-256 over the graph's canonical CSR
  bytes (``indptr`` + ``indices``); two structurally identical graphs
  produce the same digest in any process on any platform.
* The **stage name** identifies the measurement ("mixing", "spectral",
  "cores", "expansion", "gatekeeper", ...).
* **Canonical params** are the algorithm parameters serialized as
  sorted-key JSON, so dict ordering never changes the key.
* **Versions** — the codec version of :mod:`repro.analysis.persistence`
  plus a per-stage algorithm version — are folded into the key, so
  bumping either invalidates stale entries instead of decoding garbage.

Values are serialized through the persistence codec, written atomically
(temp file + ``os.replace``) under ``<root>/objects/``, and tracked in
an ``index.json`` manifest.  Corrupt or truncated entries are detected
on read, counted, deleted and treated as misses, so a damaged cache
degrades to recomputation rather than failure.  Reads probe the object
file directly (not the manifest), which combined with atomic writes
makes concurrent readers and writers safe — a reader sees either the
complete old entry or the complete new one, never a partial write.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from repro import telemetry
from repro.errors import StoreError
from repro.graph.core import Graph

__all__ = [
    "ArtifactStore",
    "StoreEntry",
    "StoreStats",
    "canonical_params",
    "graph_digest",
    "memoize",
]

#: Domain separator folded into every graph digest; bump if the digest
#: definition itself ever changes.
_DIGEST_DOMAIN = b"repro-graph-digest-v1"

_MISS = object()


def _codec():
    """The persistence codec, imported lazily to avoid import cycles.

    (:mod:`repro.analysis.persistence` registers result types from
    modules that themselves use this store.)
    """
    from repro.analysis import persistence

    return persistence


def graph_digest(graph: Graph) -> str:
    """Return the SHA-256 hex digest of ``graph``'s canonical CSR bytes.

    The digest covers ``indptr`` and ``indices`` (both int64, so the
    byte layout is platform-stable), making it reproducible across
    processes and machines — the property the store's cross-process key
    stability rests on.
    """
    h = hashlib.sha256(_DIGEST_DOMAIN)
    h.update(graph.indptr.tobytes())
    h.update(graph.indices.tobytes())
    return h.hexdigest()


def canonical_params(params: Mapping[str, Any] | None) -> str:
    """Serialize ``params`` to canonical (sorted-key) JSON.

    Only JSON-friendly values are allowed — str, bool, int, float,
    None, and lists/tuples/dicts thereof.  Anything else raises
    :class:`StoreError` so un-keyable parameters fail loudly instead of
    silently colliding.
    """

    def check(value: Any) -> Any:
        if value is None or isinstance(value, (bool, int, float, str)):
            return value
        if isinstance(value, (list, tuple)):
            return [check(v) for v in value]
        if isinstance(value, Mapping):
            return {str(k): check(v) for k, v in value.items()}
        raise StoreError(
            f"cache params must be JSON-friendly; got {type(value).__name__}"
        )

    return json.dumps(check(dict(params or {})), sort_keys=True, separators=(",", ":"))


@dataclass
class StoreStats:
    """Hit/miss/write counters for one :class:`ArtifactStore` instance.

    Counters are updated through :meth:`increment`, which is atomic —
    the pipeline's wave scheduler shares one store across worker
    threads, and an unguarded ``+=`` on plain ints drops updates under
    that interleaving.  Every increment is also mirrored into the
    active :mod:`repro.telemetry` registry as ``store.<counter>``, so
    cache traffic lands in the same metrics document as compute spans.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    corrupt: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def increment(self, counter: str, value: int = 1) -> None:
        """Atomically add ``value`` to ``counter`` and mirror to telemetry."""
        with self._lock:
            setattr(self, counter, getattr(self, counter) + value)
        telemetry.current().count(f"store.{counter}", value)

    def as_line(self) -> str:
        """One-line summary, stable enough to grep in CI logs."""
        return (
            f"cache: hits={self.hits} misses={self.misses} "
            f"writes={self.writes} evictions={self.evictions} "
            f"corrupt={self.corrupt}"
        )


@dataclass(frozen=True)
class StoreEntry:
    """One manifest row describing a stored artifact."""

    key: str
    stage: str
    graph: str
    params: str
    version: int
    created: float = field(compare=False, default=0.0)


class ArtifactStore:
    """Content-addressed measurement cache rooted at a directory.

    Parameters
    ----------
    root:
        Cache directory; created on first use.
    max_entries:
        Optional capacity.  When a write would exceed it, the oldest
        entries (by insertion) are evicted first.
    """

    def __init__(self, root: str | Path, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise StoreError("max_entries must be positive")
        self._root = Path(root)
        self._objects = self._root / "objects"
        self._index_path = self._root / "index.json"
        self._max_entries = max_entries
        self._lock = threading.Lock()
        self._stats = StoreStats()
        self._index: dict[str, StoreEntry] = {}
        if self._index_path.exists():
            self._load_index()

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------
    def key_for(
        self,
        subject: Graph | str,
        stage: str,
        params: Mapping[str, Any] | None = None,
        version: int = 1,
    ) -> str:
        """Return the content-addressed key for one artifact.

        ``subject`` is the measured graph, or a precomputed digest
        string for artifacts keyed before a graph exists (e.g. a
        dataset fingerprint keying the generation stage itself).
        """
        if not stage or "|" in stage:
            raise StoreError(f"invalid stage name {stage!r}")
        digest = subject if isinstance(subject, str) else graph_digest(subject)
        material = "|".join(
            [
                digest,
                stage,
                canonical_params(params),
                f"codec={_codec().CODEC_VERSION}",
                f"stage_version={int(version)}",
            ]
        )
        return hashlib.sha256(material.encode()).hexdigest()

    # ------------------------------------------------------------------
    # read / write
    # ------------------------------------------------------------------
    def get(
        self,
        subject: Graph | str,
        stage: str,
        params: Mapping[str, Any] | None = None,
        version: int = 1,
        default: Any = None,
    ) -> Any:
        """Return the stored value, or ``default`` on a miss.

        A corrupt entry (truncated write, damaged JSON, key mismatch)
        counts as a miss: it is recorded in :attr:`stats`, deleted best
        effort, and ``default`` is returned.
        """
        key = self.key_for(subject, stage, params, version=version)
        path = self._object_path(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            self._stats.increment("misses")
            return default
        try:
            payload = json.loads(raw)
            if payload.get("key") != key:
                raise StoreError(f"entry {key[:12]} holds a foreign key")
            value = _codec().from_jsonable(payload["value"])
        except Exception:
            self._stats.increment("corrupt")
            self._stats.increment("misses")
            self._discard(key, path)
            return default
        self._stats.increment("hits")
        return value

    def put(
        self,
        subject: Graph | str,
        stage: str,
        params: Mapping[str, Any] | None = None,
        value: Any = None,
        version: int = 1,
    ) -> str:
        """Store ``value`` and return its key.

        The object file is written atomically; the manifest is updated
        under a lock and evictions are applied if ``max_entries`` would
        be exceeded.
        """
        key = self.key_for(subject, stage, params, version=version)
        digest = subject if isinstance(subject, str) else graph_digest(subject)
        payload = {
            "key": key,
            "stage": stage,
            "graph": digest,
            "params": canonical_params(params),
            "version": int(version),
            "codec": _codec().CODEC_VERSION,
            "value": _codec().to_jsonable(value),
        }
        path = self._object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._atomic_write(path, json.dumps(payload))
        with self._lock:
            self._index[key] = StoreEntry(
                key=key,
                stage=stage,
                graph=digest,
                params=payload["params"],
                version=int(version),
                created=time.time(),
            )
            self._stats.increment("writes")
            self._evict_locked()
            self._write_index_locked()
        return key

    def contains(
        self,
        subject: Graph | str,
        stage: str,
        params: Mapping[str, Any] | None = None,
        version: int = 1,
    ) -> bool:
        """True when a readable entry exists (does not bump counters)."""
        key = self.key_for(subject, stage, params, version=version)
        return self._object_path(key).exists()

    def memoize(
        self,
        subject: Graph | str,
        stage: str,
        params: Mapping[str, Any] | None,
        fn: Callable[[], Any],
        version: int = 1,
    ) -> Any:
        """Return the cached value for the key, computing and storing on miss."""
        value = self.get(subject, stage, params, version=version, default=_MISS)
        if value is not _MISS:
            return value
        value = fn()
        self.put(subject, stage, params, value, version=version)
        return value

    # ------------------------------------------------------------------
    # introspection / maintenance
    # ------------------------------------------------------------------
    @property
    def root(self) -> Path:
        """The cache directory."""
        return self._root

    @property
    def stats(self) -> StoreStats:
        """Counters accumulated by this instance."""
        return self._stats

    def entries(self) -> list[StoreEntry]:
        """Manifest rows, oldest first."""
        with self._lock:
            return list(self._index.values())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        with self._lock:
            removed = len(self._index)
            for key in list(self._index):
                try:
                    self._object_path(key).unlink()
                except OSError:
                    pass
            self._index.clear()
            self._write_index_locked()
        return removed

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _object_path(self, key: str) -> Path:
        return self._objects / key[:2] / f"{key}.json"

    @staticmethod
    def _atomic_write(path: Path, text: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _discard(self, key: str, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        with self._lock:
            if self._index.pop(key, None) is not None:
                self._write_index_locked()

    def _evict_locked(self) -> None:
        if self._max_entries is None:
            return
        while len(self._index) > self._max_entries:
            oldest = next(iter(self._index))
            self._index.pop(oldest)
            try:
                self._object_path(oldest).unlink()
            except OSError:
                pass
            self._stats.increment("evictions")

    def _write_index_locked(self) -> None:
        self._root.mkdir(parents=True, exist_ok=True)
        rows = [
            {
                "key": e.key,
                "stage": e.stage,
                "graph": e.graph,
                "params": e.params,
                "version": e.version,
                "created": e.created,
            }
            for e in self._index.values()
        ]
        self._atomic_write(self._index_path, json.dumps({"entries": rows}))

    def _load_index(self) -> None:
        try:
            rows: Iterable[dict] = json.loads(
                self._index_path.read_text(encoding="utf-8")
            )["entries"]
            self._index = {
                row["key"]: StoreEntry(
                    key=row["key"],
                    stage=row["stage"],
                    graph=row["graph"],
                    params=row["params"],
                    version=int(row["version"]),
                    created=float(row.get("created", 0.0)),
                )
                for row in rows
            }
        except Exception:
            # A damaged manifest is rebuilt from the object files; the
            # objects themselves remain the source of truth.
            self._index = {}
            if self._objects.exists():
                for obj in sorted(self._objects.glob("*/*.json")):
                    try:
                        payload = json.loads(obj.read_text(encoding="utf-8"))
                        self._index[payload["key"]] = StoreEntry(
                            key=payload["key"],
                            stage=payload["stage"],
                            graph=payload["graph"],
                            params=payload["params"],
                            version=int(payload["version"]),
                            created=obj.stat().st_mtime,
                        )
                    except Exception:
                        continue


def memoize(
    store: ArtifactStore | None,
    subject: Graph | str,
    stage: str,
    params: Mapping[str, Any] | None,
    fn: Callable[[], Any],
    version: int = 1,
) -> Any:
    """Memoize ``fn`` through ``store``; with ``store=None`` just call it.

    The helper every store-aware measurement entry point uses, so the
    "no cache configured" path stays a plain function call.
    """
    if store is None:
        return fn()
    return store.memoize(subject, stage, params, fn, version=version)
