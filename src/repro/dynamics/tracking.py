"""Property tracking across dynamic-graph snapshots.

Answers the paper's open question operationally: given an evolving
graph, how do the trust-relevant properties (SLEM/mixing, core
structure, expansion) drift, and do defense assumptions keep holding?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.cores.statistics import core_structure
from repro.errors import GraphError
from repro.expansion.envelope import envelope_expansion
from repro.graph.core import Graph
from repro.mixing.spectral import slem
from repro.store import ArtifactStore, memoize

__all__ = ["SnapshotMetrics", "track_evolution"]


@dataclass(frozen=True)
class SnapshotMetrics:
    """Trust-relevant properties of one snapshot."""

    step: int
    num_nodes: int
    num_edges: int
    slem: float
    degeneracy: int
    max_cores: int
    mean_small_set_expansion: float

    @property
    def spectral_gap(self) -> float:
        """``1 - slem``; bigger means faster mixing."""
        return 1.0 - self.slem


def track_evolution(
    graph_sequence: Iterable[Graph],
    expansion_sources: int = 30,
    seed: int = 0,
    strategy: str = "batched",
    chunk_size: int | None = None,
    workers: int | None = None,
    store: ArtifactStore | None = None,
) -> list[SnapshotMetrics]:
    """Measure every snapshot in an evolution sequence.

    Expansion is summarized as the mean expansion factor over envelopes
    of at most n/10 nodes (the regime Figures 3-4 show is
    discriminative).  ``strategy``/``chunk_size``/``workers`` pass
    through to :func:`repro.expansion.envelope_expansion`.  ``store``
    memoizes the per-snapshot SLEM/core/expansion measurements under
    each snapshot's content digest, so overlapping or replayed
    evolution sequences (e.g. sliding windows over the same history)
    only measure new snapshots.
    """
    out: list[SnapshotMetrics] = []
    for step, graph in enumerate(graph_sequence):
        if graph.num_nodes < 3 or graph.num_edges < 2:
            raise GraphError(f"snapshot {step} is too small to measure")
        structure = memoize(
            store, graph, "cores", {}, lambda graph=graph: core_structure(graph)
        )
        measurement = memoize(
            store,
            graph,
            "expansion",
            {"num_sources": expansion_sources, "seed": seed},
            lambda graph=graph: envelope_expansion(
                graph,
                num_sources=min(expansion_sources, graph.num_nodes),
                seed=seed,
                strategy=strategy,
                chunk_size=chunk_size,
                workers=workers,
            ),
        )
        small = measurement.set_sizes <= max(graph.num_nodes // 10, 1)
        factors = measurement.expansion_factors[small]
        out.append(
            SnapshotMetrics(
                step=step,
                num_nodes=graph.num_nodes,
                num_edges=graph.num_edges,
                slem=memoize(
                    store, graph, "slem", {}, lambda graph=graph: slem(graph)
                ),
                degeneracy=structure.degeneracy,
                max_cores=int(structure.num_cores.max()),
                mean_small_set_expansion=float(factors.mean()) if factors.size else 0.0,
            )
        )
    return out
