"""Dynamic social graphs: evolution models, event streams and property
tracking (the paper's Section-VI open problem)."""

from repro.dynamics.evolution import (
    ChurnModel,
    GraphDelta,
    GrowthModel,
    apply_delta,
    event_stream,
    snapshots,
)
from repro.dynamics.tracking import SnapshotMetrics, track_evolution

__all__ = [
    "ChurnModel",
    "GraphDelta",
    "GrowthModel",
    "apply_delta",
    "event_stream",
    "snapshots",
    "SnapshotMetrics",
    "track_evolution",
]
