"""Dynamic social graphs: evolution models and property tracking
(the paper's Section-VI open problem)."""

from repro.dynamics.evolution import ChurnModel, GrowthModel, snapshots
from repro.dynamics.tracking import SnapshotMetrics, track_evolution

__all__ = [
    "ChurnModel",
    "GrowthModel",
    "snapshots",
    "SnapshotMetrics",
    "track_evolution",
]
