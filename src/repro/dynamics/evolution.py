"""Dynamic social graphs: evolution models, event streams and snapshots.

Section VI names this the paper's open problem: "investigate the
expansion and mixing characteristics of dynamic social graphs ...
understanding the long-term impact of evolution".  This module provides
the substrate: seeded evolution models that turn a base graph into a
sequence of snapshots.

Two models cover the regimes the social-networks literature describes:

* :class:`ChurnModel` — membership is stable but ties rewire: each step
  deletes a fraction of random edges and draws replacements, either
  uniformly ("random" — erodes community structure over time) or via
  triadic closure ("triadic" — reinforces it).
* :class:`GrowthModel` — densification: new nodes arrive by
  preferential attachment (Leskovec et al.'s densification pattern,
  cited as [8] in the paper).

Both models expose two step surfaces:

* ``step(graph) -> Graph`` — the classic snapshot-to-snapshot form.
* ``step_events(graph) -> GraphDelta`` — the **event-stream adapter**:
  one step expressed as a delta (edges added, edges removed, nodes
  created) instead of a rebuilt graph.  ``step`` is now literally
  ``apply_delta(graph, step_events(graph))``, and consumers that keep
  incremental state (the :mod:`repro.serve` overlay layer) can feed the
  deltas straight into a :class:`repro.serve.GraphOverlay` without ever
  rebuilding per-step edge lists.

Proposal drawing is vectorized at *block* granularity: each round draws
one numpy block of candidate edges sized to the remaining need, then
filters invalid / duplicate / already-present candidates in bulk.  For
``rewiring="random"`` the block draw consumes the PCG64 stream exactly
as the historical one-candidate-at-a-time loop did, so random-mode
churn is bit-identical to the legacy implementation.  Triadic mode
redefines the draw order at block granularity (node block, then
neighbor-index blocks) — a documented RNG-scheme change.  Both modes
keep a ``strategy="sequential"`` oracle that consumes the *same* block
draws but applies the filtering rules one candidate at a time in plain
python; the batched path is pinned bit-identical to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import GraphError
from repro.graph.core import Graph
from repro.graph.ops import largest_connected_component

__all__ = [
    "GraphDelta",
    "apply_delta",
    "ChurnModel",
    "GrowthModel",
    "event_stream",
    "snapshots",
]

_STRATEGIES = ("batched", "sequential")


@dataclass(frozen=True)
class GraphDelta:
    """One evolution step as an event batch.

    ``added`` and ``removed`` are ``(k, 2)`` arrays of canonical
    ``u < v`` edges; ``num_new_nodes`` counts nodes appended after the
    current id range (new ids are assigned densely).  ``added`` may
    re-create an edge listed in ``removed`` — removals apply first.
    """

    num_new_nodes: int
    added: np.ndarray
    removed: np.ndarray

    def __post_init__(self) -> None:
        if self.num_new_nodes < 0:
            raise GraphError("num_new_nodes must be non-negative")
        for name in ("added", "removed"):
            arr = getattr(self, name)
            if arr.ndim != 2 or arr.shape[1] != 2:
                raise GraphError(f"{name} must be a (k, 2) edge array")

    @property
    def num_events(self) -> int:
        """Total event count (edge additions + removals + new nodes)."""
        return self.num_new_nodes + self.added.shape[0] + self.removed.shape[0]


def _empty_edges() -> np.ndarray:
    return np.empty((0, 2), dtype=np.int64)


def apply_delta(graph: Graph, delta: GraphDelta) -> Graph:
    """Return the graph with ``delta`` applied (removals before additions)."""
    edges = graph.edge_array()
    n = graph.num_nodes + delta.num_new_nodes
    if delta.removed.size:
        keys = edges[:, 0] * n + edges[:, 1]
        removed_keys = delta.removed[:, 0] * n + delta.removed[:, 1]
        edges = edges[~np.isin(keys, removed_keys)]
    if delta.added.size:
        edges = np.concatenate([edges, delta.added.astype(np.int64)])
    return Graph.from_edges(edges, num_nodes=n)


class ChurnModel:
    """Edge churn over a fixed node set.

    Parameters
    ----------
    churn_rate:
        Fraction of edges replaced per step.
    rewiring:
        ``"random"`` draws replacement edges uniformly; ``"triadic"``
        closes triangles (a neighbor's neighbor), keeping community
        structure tight.
    strategy:
        ``"batched"`` (default) filters each proposal block with
        vectorized numpy; ``"sequential"`` is the kept oracle that
        consumes the same draws one candidate at a time.  Both produce
        bit-identical deltas.
    """

    def __init__(
        self,
        churn_rate: float = 0.05,
        rewiring: str = "random",
        seed: int = 0,
        strategy: str = "batched",
    ) -> None:
        if not 0.0 < churn_rate <= 1.0:
            raise GraphError("churn_rate must be in (0, 1]")
        if rewiring not in ("random", "triadic"):
            raise GraphError("rewiring must be 'random' or 'triadic'")
        if strategy not in _STRATEGIES:
            raise GraphError(f"strategy must be one of {_STRATEGIES}")
        self._rate = churn_rate
        self._rewiring = rewiring
        self._strategy = strategy
        self._rng = np.random.default_rng(seed)

    def step(self, graph: Graph) -> Graph:
        """Return the next snapshot after one churn step."""
        return apply_delta(graph, self.step_events(graph))

    def step_events(self, graph: Graph) -> GraphDelta:
        """One churn step as a :class:`GraphDelta` (no graph rebuild).

        Drops ``churn_rate * m`` random edges, then draws replacements
        in vectorized blocks until the count is restored or the attempt
        budget (50 per replacement) is exhausted.  Dropped edges may be
        re-proposed, matching the historical semantics (candidates are
        rejected only against *kept* and already-accepted edges).
        """
        if graph.num_edges < 2:
            raise GraphError("churn needs at least 2 edges")
        edges = graph.edge_array()
        num_replace = max(int(self._rate * graph.num_edges), 1)
        drop_idx = self._rng.choice(
            edges.shape[0], size=num_replace, replace=False
        )
        keep_mask = np.ones(edges.shape[0], dtype=bool)
        keep_mask[drop_idx] = False
        kept = edges[keep_mask]
        kept_keys = kept[:, 0] * graph.num_nodes + kept[:, 1]
        kept_keys.sort()
        if self._strategy == "batched":
            added = self._propose_batched(graph, kept_keys, num_replace)
        else:
            added = self._propose_sequential(graph, kept_keys, num_replace)
        return GraphDelta(
            num_new_nodes=0, added=added, removed=edges[np.sort(drop_idx)]
        )

    def _draw_block(
        self, graph: Graph, size: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw ``size`` candidate edges; returns (lo, hi, valid).

        Random mode draws a ``(size, 2)`` block — the same PCG64
        consumption as ``size`` historical two-scalar proposals.
        Triadic mode draws the node block, then one neighbor-index
        block per hop; candidates whose start node is isolated are
        marked invalid (their index draws are burned, by design — the
        draw count must not depend on the data).
        """
        n = graph.num_nodes
        if self._rewiring == "random":
            block = self._rng.integers(n, size=(size, 2))
            lo = np.minimum(block[:, 0], block[:, 1])
            hi = np.maximum(block[:, 0], block[:, 1])
            return lo, hi, lo != hi
        indptr, indices = graph.indptr, graph.indices
        degrees = graph.degrees
        u = self._rng.integers(n, size=size)
        deg_u = degrees[u]
        iv = self._rng.integers(0, np.maximum(deg_u, 1), size=size)
        v = indices[np.minimum(indptr[u] + iv, indices.size - 1)]
        iw = self._rng.integers(0, np.maximum(degrees[v], 1), size=size)
        w = indices[np.minimum(indptr[v] + iw, indices.size - 1)]
        lo = np.minimum(u, w)
        hi = np.maximum(u, w)
        return lo, hi, (deg_u > 0) & (lo != hi)

    def _propose_batched(
        self, graph: Graph, kept_keys: np.ndarray, num_replace: int
    ) -> np.ndarray:
        n = graph.num_nodes
        budget = 50 * num_replace
        attempts = 0
        found = 0
        taken_keys = np.empty(0, dtype=np.int64)
        chosen: list[np.ndarray] = []
        while found < num_replace and attempts < budget:
            size = min(num_replace - found, budget - attempts)
            lo, hi, valid = self._draw_block(graph, size)
            attempts += size
            keys = lo * n + hi
            valid &= ~np.isin(keys, kept_keys)
            valid &= ~np.isin(keys, taken_keys)
            # keep only the first occurrence of each key among the
            # still-valid candidates (mirrors the oracle's seen-set)
            idx = np.flatnonzero(valid)
            _, first = np.unique(keys[idx], return_index=True)
            take = idx[np.sort(first)]
            if take.size:
                chosen.append(np.stack([lo[take], hi[take]], axis=1))
                taken_keys = np.concatenate([taken_keys, keys[take]])
                found += take.size
        if not chosen:
            return _empty_edges()
        return np.concatenate(chosen).astype(np.int64)

    def _propose_sequential(
        self, graph: Graph, kept_keys: np.ndarray, num_replace: int
    ) -> np.ndarray:
        n = graph.num_nodes
        budget = 50 * num_replace
        attempts = 0
        kept = set(int(k) for k in kept_keys)
        seen: set[int] = set()
        added: list[tuple[int, int]] = []
        while len(added) < num_replace and attempts < budget:
            size = min(num_replace - len(added), budget - attempts)
            lo, hi, valid = self._draw_block(graph, size)
            attempts += size
            for i in range(size):
                if not valid[i]:
                    continue
                key = int(lo[i]) * n + int(hi[i])
                if key in kept or key in seen:
                    continue
                seen.add(key)
                added.append((int(lo[i]), int(hi[i])))
        if not added:
            return _empty_edges()
        return np.asarray(added, dtype=np.int64)


class GrowthModel:
    """Preferential-attachment growth: new nodes join each step.

    The target-sampling draw sequence is bit-identical to the original
    implementation (one scalar draw per candidate endpoint); what the
    event-stream rewrite removed is the per-step python rebuild of the
    full edge and endpoint lists — the base endpoint multiset is now
    the raveled ``edge_array`` and only the step's new endpoints live
    in python lists.
    """

    def __init__(
        self, nodes_per_step: int = 10, attachment: int = 3, seed: int = 0
    ) -> None:
        if nodes_per_step < 1:
            raise GraphError("nodes_per_step must be positive")
        if attachment < 1:
            raise GraphError("attachment must be positive")
        self._per_step = nodes_per_step
        self._attachment = attachment
        self._rng = np.random.default_rng(seed)

    def step(self, graph: Graph) -> Graph:
        """Return the graph grown by ``nodes_per_step`` new members."""
        return apply_delta(graph, self.step_events(graph))

    def step_events(self, graph: Graph) -> GraphDelta:
        """One growth step as a :class:`GraphDelta` (new nodes + edges)."""
        if graph.num_edges == 0:
            raise GraphError("growth needs a non-empty base graph")
        # endpoint multiset: each edge contributes both endpoints, in
        # edge_array order — degree-proportional sampling by index
        endpoints = graph.edge_array().ravel()
        base_len = endpoints.size
        extra: list[int] = []
        added: list[tuple[int, int]] = []
        next_id = graph.num_nodes
        for _ in range(self._per_step):
            wanted = min(self._attachment, next_id)
            total = base_len + len(extra)
            targets: set[int] = set()
            while len(targets) < wanted:
                j = int(self._rng.integers(total))
                targets.add(
                    int(endpoints[j]) if j < base_len else extra[j - base_len]
                )
            for t in sorted(targets):
                added.append((t, next_id))
                extra.extend((t, next_id))
            next_id += 1
        return GraphDelta(
            num_new_nodes=self._per_step,
            added=np.asarray(added, dtype=np.int64),
            removed=_empty_edges(),
        )


def event_stream(
    base: Graph, model: ChurnModel | GrowthModel, num_steps: int
) -> Iterator[GraphDelta]:
    """Yield ``num_steps`` deltas, evolving from ``base``.

    The adapter between the evolution models and incremental consumers:
    each yielded :class:`GraphDelta` describes one step relative to the
    graph produced by all previous deltas, so feeding the stream into a
    :class:`repro.serve.GraphOverlay` (or :func:`apply_delta`)
    reconstructs exactly the :func:`snapshots` sequence.
    """
    if num_steps < 0:
        raise GraphError("num_steps must be non-negative")
    current = base
    for _ in range(num_steps):
        delta = model.step_events(current)
        yield delta
        current = apply_delta(current, delta)


def snapshots(
    base: Graph,
    model: ChurnModel | GrowthModel,
    num_steps: int,
    keep_largest_component: bool = True,
) -> Iterator[Graph]:
    """Yield ``num_steps + 1`` snapshots: the base, then each evolution step.

    With ``keep_largest_component`` each yielded snapshot is restricted
    to its largest component (churn can orphan nodes), but evolution
    continues from the full graph.
    """
    if num_steps < 0:
        raise GraphError("num_steps must be non-negative")

    def clean(graph: Graph) -> Graph:
        if not keep_largest_component:
            return graph
        lcc, _ = largest_connected_component(graph)
        return lcc

    current = base
    yield clean(current)
    for _ in range(num_steps):
        current = model.step(current)
        yield clean(current)
