"""Dynamic social graphs: evolution models and snapshot sequences.

Section VI names this the paper's open problem: "investigate the
expansion and mixing characteristics of dynamic social graphs ...
understanding the long-term impact of evolution".  This module provides
the substrate: seeded evolution models that turn a base graph into a
sequence of snapshots.

Two models cover the regimes the social-networks literature describes:

* :class:`ChurnModel` — membership is stable but ties rewire: each step
  deletes a fraction of random edges and draws replacements, either
  uniformly ("random" — erodes community structure over time) or via
  triadic closure ("triadic" — reinforces it).
* :class:`GrowthModel` — densification: new nodes arrive by
  preferential attachment (Leskovec et al.'s densification pattern,
  cited as [8] in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import GraphError
from repro.graph.core import Graph
from repro.graph.ops import largest_connected_component

__all__ = ["ChurnModel", "GrowthModel", "snapshots"]


class ChurnModel:
    """Edge churn over a fixed node set.

    Parameters
    ----------
    churn_rate:
        Fraction of edges replaced per step.
    rewiring:
        ``"random"`` draws replacement edges uniformly; ``"triadic"``
        closes triangles (a neighbor's neighbor), keeping community
        structure tight.
    """

    def __init__(
        self, churn_rate: float = 0.05, rewiring: str = "random", seed: int = 0
    ) -> None:
        if not 0.0 < churn_rate <= 1.0:
            raise GraphError("churn_rate must be in (0, 1]")
        if rewiring not in ("random", "triadic"):
            raise GraphError("rewiring must be 'random' or 'triadic'")
        self._rate = churn_rate
        self._rewiring = rewiring
        self._rng = np.random.default_rng(seed)

    def step(self, graph: Graph) -> Graph:
        """Return the next snapshot after one churn step."""
        if graph.num_edges < 2:
            raise GraphError("churn needs at least 2 edges")
        edges = graph.edge_array()
        existing = {(int(u), int(v)) for u, v in edges}
        num_replace = max(int(self._rate * graph.num_edges), 1)
        drop_idx = self._rng.choice(edges.shape[0], size=num_replace, replace=False)
        dropped = {tuple(map(int, edges[i])) for i in drop_idx}
        kept = existing - dropped
        added: set[tuple[int, int]] = set()
        attempts = 0
        while len(added) < num_replace and attempts < 50 * num_replace:
            attempts += 1
            candidate = self._propose(graph)
            if candidate is None:
                continue
            key = (min(candidate), max(candidate))
            if key not in kept and key not in added and key[0] != key[1]:
                added.add(key)
        return Graph.from_edges(
            sorted(kept | added), num_nodes=graph.num_nodes
        )

    def _propose(self, graph: Graph) -> tuple[int, int] | None:
        n = graph.num_nodes
        if self._rewiring == "random":
            return (
                int(self._rng.integers(n)),
                int(self._rng.integers(n)),
            )
        # triadic: pick u, a neighbor v, then one of v's neighbors w
        u = int(self._rng.integers(n))
        nbrs_u = graph.neighbors(u)
        if nbrs_u.size == 0:
            return None
        v = int(nbrs_u[self._rng.integers(nbrs_u.size)])
        nbrs_v = graph.neighbors(v)
        w = int(nbrs_v[self._rng.integers(nbrs_v.size)])
        return (u, w)


class GrowthModel:
    """Preferential-attachment growth: new nodes join each step."""

    def __init__(
        self, nodes_per_step: int = 10, attachment: int = 3, seed: int = 0
    ) -> None:
        if nodes_per_step < 1:
            raise GraphError("nodes_per_step must be positive")
        if attachment < 1:
            raise GraphError("attachment must be positive")
        self._per_step = nodes_per_step
        self._attachment = attachment
        self._rng = np.random.default_rng(seed)

    def step(self, graph: Graph) -> Graph:
        """Return the graph grown by ``nodes_per_step`` new members."""
        if graph.num_edges == 0:
            raise GraphError("growth needs a non-empty base graph")
        edges = [tuple(map(int, e)) for e in graph.edge_array()]
        repeated: list[int] = []
        for u, v in edges:
            repeated.extend((u, v))
        next_id = graph.num_nodes
        for _ in range(self._per_step):
            wanted = min(self._attachment, next_id)
            targets: set[int] = set()
            while len(targets) < wanted:
                targets.add(repeated[int(self._rng.integers(len(repeated)))])
            for t in sorted(targets):
                edges.append((t, next_id))
                repeated.extend((t, next_id))
            next_id += 1
        return Graph.from_edges(edges, num_nodes=next_id)


def snapshots(
    base: Graph,
    model: ChurnModel | GrowthModel,
    num_steps: int,
    keep_largest_component: bool = True,
) -> Iterator[Graph]:
    """Yield ``num_steps + 1`` snapshots: the base, then each evolution step.

    With ``keep_largest_component`` each yielded snapshot is restricted
    to its largest component (churn can orphan nodes), but evolution
    continues from the full graph.
    """
    if num_steps < 0:
        raise GraphError("num_steps must be non-negative")

    def clean(graph: Graph) -> Graph:
        if not keep_largest_component:
            return graph
        lcc, _ = largest_connected_component(graph)
        return lcc

    current = base
    yield clean(current)
    for _ in range(num_steps):
        current = model.step(current)
        yield clean(current)
