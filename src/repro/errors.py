"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures without
catching unrelated programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for structurally invalid graph operations or inputs."""


class NodeNotFoundError(GraphError):
    """Raised when a node id is outside the graph's node range."""

    def __init__(self, node: int, num_nodes: int) -> None:
        super().__init__(
            f"node {node} is out of range for a graph with {num_nodes} nodes"
        )
        self.node = node
        self.num_nodes = num_nodes


class EmptyGraphError(GraphError):
    """Raised when an operation requires a non-empty graph."""


class DisconnectedGraphError(GraphError):
    """Raised when an operation requires a connected graph."""


class GeneratorError(ReproError):
    """Raised when a synthetic graph generator receives invalid parameters."""


class DatasetError(ReproError):
    """Raised for unknown dataset names or invalid dataset parameters."""


class ConvergenceError(ReproError):
    """Raised when an iterative numerical method fails to converge."""

    def __init__(self, message: str, iterations: int | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations


class SybilDefenseError(ReproError):
    """Raised for invalid Sybil-defense configurations or inputs."""


class ServeError(ReproError):
    """Raised for invalid admission-service requests or configuration."""


class StoreError(ReproError):
    """Raised for invalid artifact-store keys, params or configuration."""


class PipelineError(ReproError):
    """Raised for malformed experiment pipelines (cycles, unknown stages)."""
