"""Non-reversible chains on directed social graphs.

The paper symmetrizes its directed traces before measuring; the
authors' follow-up shows directed mixing behaves differently, because
the directed walk's chain is non-reversible and may not even be
irreducible (sink strongly-connected components trap the walk).  This
module provides:

* the directed transition matrix with PageRank-style teleportation to
  restore ergodicity (``damping < 1``),
* stationary distributions via power iteration (no detailed balance, so
  the degree formula does not apply),
* a TVD-vs-walk-length measurement comparable to the undirected
  Figure-1 curves.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.digraph.core import DiGraph
from repro.errors import ConvergenceError, GraphError
from repro.markov.distance import total_variation_distance

__all__ = [
    "directed_transition_matrix",
    "directed_stationary",
    "directed_mixing_profile",
]


def directed_transition_matrix(
    digraph: DiGraph, damping: float = 1.0
) -> sp.csr_matrix:
    """Return the directed walk matrix, optionally damped.

    With ``damping = d < 1`` the walk teleports to a uniformly random
    node with probability ``1 - d`` each step (and always teleports from
    sinks), which makes the chain ergodic on any digraph — the standard
    PageRank construction.  ``damping = 1`` gives the raw chain, where
    sinks self-loop.
    """
    n = digraph.num_nodes
    if n == 0:
        raise GraphError("transition matrix of an empty digraph is undefined")
    if not 0.0 < damping <= 1.0:
        raise GraphError("damping must be in (0, 1]")
    out = digraph.out_degrees.astype(float)
    inv = np.zeros(n)
    positive = out > 0
    inv[positive] = 1.0 / out[positive]
    data = np.repeat(inv, digraph.out_degrees)
    arcs = digraph.arc_array()
    walk = sp.csr_matrix(
        (data, (arcs[:, 0], arcs[:, 1])) if arcs.size else ((n, n)),
        shape=(n, n),
    ) if arcs.size else sp.csr_matrix((n, n))
    sinks = np.flatnonzero(~positive)
    if damping == 1.0:
        if sinks.size:
            walk = walk + sp.csr_matrix(
                (np.ones(sinks.size), (sinks, sinks)), shape=(n, n)
            )
        return walk.tocsr()
    # damped: d * walk + rows for sinks spread uniformly + teleportation
    dense_rows = sp.csr_matrix(
        (np.full(sinks.size * n, 1.0 / n),
         (np.repeat(sinks, n), np.tile(np.arange(n), sinks.size))),
        shape=(n, n),
    ) if sinks.size else sp.csr_matrix((n, n))
    stochastic = walk + dense_rows
    teleport = sp.csr_matrix(np.full((n, n), 1.0 / n))
    return (damping * stochastic + (1.0 - damping) * teleport).tocsr()


def directed_stationary(
    digraph: DiGraph,
    damping: float = 0.85,
    tol: float = 1e-12,
    max_iterations: int = 10_000,
) -> np.ndarray:
    """Return the stationary distribution by power iteration.

    Unlike the undirected chain there is no closed form: the directed
    stationary distribution is the dominant left eigenvector of P.
    """
    matrix = directed_transition_matrix(digraph, damping=damping)
    n = digraph.num_nodes
    dist = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        nxt = matrix.T @ dist
        nxt /= nxt.sum()
        if np.abs(nxt - dist).sum() < tol:
            return nxt
        dist = nxt
    raise ConvergenceError(
        "power iteration did not converge; the raw chain may be periodic "
        "or reducible — use damping < 1",
        iterations=max_iterations,
    )


def directed_mixing_profile(
    digraph: DiGraph,
    walk_lengths: list[int],
    damping: float = 0.85,
    num_sources: int = 50,
    seed: int = 0,
) -> np.ndarray:
    """Return mean TVD-to-stationary per walk length for the damped chain.

    The directed analog of the Figure-1 sampling measurement; compare
    against the symmetrized graph's profile to quantify what
    symmetrization hides.
    """
    lengths = np.asarray(walk_lengths, dtype=np.int64)
    if lengths.size == 0 or np.any(np.diff(lengths) <= 0):
        raise GraphError("walk_lengths must be strictly increasing")
    matrix = directed_transition_matrix(digraph, damping=damping)
    pi = directed_stationary(digraph, damping=damping)
    rng = np.random.default_rng(seed)
    count = min(num_sources, digraph.num_nodes)
    sources = rng.choice(digraph.num_nodes, size=count, replace=False)
    tvd = np.zeros((count, lengths.size))
    for row, source in enumerate(sources):
        dist = np.zeros(digraph.num_nodes)
        dist[source] = 1.0
        step = 0
        for col, target in enumerate(lengths):
            while step < target:
                dist = matrix.T @ dist
                step += 1
            tvd[row, col] = total_variation_distance(dist, pi)
    return tvd.mean(axis=0)
