"""Directed social graphs: substrate, non-reversible chains, generators
(the authors' directed-mixing follow-up direction)."""

from repro.digraph.chain import (
    directed_mixing_profile,
    directed_stationary,
    directed_transition_matrix,
)
from repro.digraph.core import DiGraph
from repro.digraph.generators import directed_preferential_attachment, random_digraph

__all__ = [
    "DiGraph",
    "directed_transition_matrix",
    "directed_stationary",
    "directed_mixing_profile",
    "directed_preferential_attachment",
    "random_digraph",
]
