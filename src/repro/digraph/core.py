"""Directed graph substrate.

Several of Table I's graphs are natively *directed* (Wiki-vote ballots,
Epinions trust statements, Slashdot friend/foe links); the paper, like
most of the Sybil-defense literature, symmetrizes them.  The authors'
follow-up work ("On the Mixing Time of Directed Social Graphs") studies
what that symmetrization hides, so this package provides the directed
substrate: a CSR digraph with both out- and in-adjacency, plus the
non-reversible chain machinery in :mod:`repro.digraph.chain`.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.errors import GraphError, NodeNotFoundError
from repro.graph.core import Graph

__all__ = ["DiGraph"]


def _canonical_arcs(edges: Iterable[tuple[int, int]]) -> np.ndarray:
    arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphError(f"arc array must have shape (k, 2), got {arr.shape}")
    arr = arr.astype(np.int64, copy=False)
    if arr.min() < 0:
        raise GraphError("node ids must be non-negative")
    keep = arr[:, 0] != arr[:, 1]  # drop self loops
    return np.unique(arr[keep], axis=0)


class DiGraph:
    """An immutable simple directed graph in dual-CSR form.

    Stores both the out-adjacency (``out_indptr``/``out_indices``) and
    in-adjacency (``in_indptr``/``in_indices``) so walks and reverse-BFS
    are both cache friendly.  At most one arc per ordered pair; no self
    loops.
    """

    __slots__ = ("_out_indptr", "_out_indices", "_in_indptr", "_in_indices")

    def __init__(
        self,
        out_indptr: np.ndarray,
        out_indices: np.ndarray,
        in_indptr: np.ndarray,
        in_indices: np.ndarray,
    ) -> None:
        self._out_indptr = np.asarray(out_indptr, dtype=np.int64)
        self._out_indices = np.asarray(out_indices, dtype=np.int64)
        self._in_indptr = np.asarray(in_indptr, dtype=np.int64)
        self._in_indices = np.asarray(in_indices, dtype=np.int64)
        if self._out_indptr.size != self._in_indptr.size:
            raise GraphError("out/in indptr arrays disagree on node count")
        if self._out_indices.size != self._in_indices.size:
            raise GraphError("out/in indices arrays disagree on arc count")
        for arr in (self._out_indptr, self._out_indices, self._in_indptr, self._in_indices):
            arr.setflags(write=False)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_arcs(
        cls, arcs: Iterable[tuple[int, int]], num_nodes: int | None = None
    ) -> "DiGraph":
        """Build from (source, target) pairs; duplicates and loops drop."""
        canon = _canonical_arcs(arcs)
        inferred = int(canon.max()) + 1 if canon.size else 0
        n = inferred if num_nodes is None else int(num_nodes)
        if n < inferred:
            raise GraphError(
                f"num_nodes={n} smaller than max referenced id {inferred - 1}"
            )

        def build_csr(src: np.ndarray, dst: np.ndarray):
            order = np.lexsort((dst, src))
            src, dst = src[order], dst[order]
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.add.at(indptr, src + 1, 1)
            np.cumsum(indptr, out=indptr)
            return indptr, dst

        out_indptr, out_indices = build_csr(canon[:, 0], canon[:, 1])
        in_indptr, in_indices = build_csr(canon[:, 1], canon[:, 0])
        return cls(out_indptr, out_indices, in_indptr, in_indices)

    @classmethod
    def empty(cls, num_nodes: int = 0) -> "DiGraph":
        """Return a digraph with no arcs."""
        if num_nodes < 0:
            raise GraphError("num_nodes must be non-negative")
        zeros = np.zeros(num_nodes + 1, dtype=np.int64)
        none = np.empty(0, dtype=np.int64)
        return cls(zeros, none, zeros.copy(), none.copy())

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self._out_indptr.size - 1

    @property
    def num_arcs(self) -> int:
        """Number of directed arcs."""
        return self._out_indices.size

    @property
    def out_degrees(self) -> np.ndarray:
        """Out-degree per node."""
        return np.diff(self._out_indptr)

    @property
    def in_degrees(self) -> np.ndarray:
        """In-degree per node."""
        return np.diff(self._in_indptr)

    def out_degree(self, node: int) -> int:
        """Return the node's out-degree."""
        self._check_node(node)
        return int(self._out_indptr[node + 1] - self._out_indptr[node])

    def in_degree(self, node: int) -> int:
        """Return the node's in-degree."""
        self._check_node(node)
        return int(self._in_indptr[node + 1] - self._in_indptr[node])

    def successors(self, node: int) -> np.ndarray:
        """Return the sorted out-neighbors."""
        self._check_node(node)
        return self._out_indices[self._out_indptr[node] : self._out_indptr[node + 1]]

    def predecessors(self, node: int) -> np.ndarray:
        """Return the sorted in-neighbors."""
        self._check_node(node)
        return self._in_indices[self._in_indptr[node] : self._in_indptr[node + 1]]

    def has_arc(self, source: int, target: int) -> bool:
        """Return True when the arc ``source -> target`` exists."""
        succ = self.successors(source)
        pos = np.searchsorted(succ, target)
        return bool(pos < succ.size and succ[pos] == target)

    def arcs(self) -> Iterator[tuple[int, int]]:
        """Yield every arc as (source, target)."""
        for u in range(self.num_nodes):
            for v in self.successors(u):
                yield (u, int(v))

    def arc_array(self) -> np.ndarray:
        """Return a ``(num_arcs, 2)`` array of arcs."""
        if self.num_arcs == 0:
            return np.empty((0, 2), dtype=np.int64)
        src = np.repeat(
            np.arange(self.num_nodes, dtype=np.int64), self.out_degrees
        )
        return np.stack([src, self._out_indices], axis=1)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_undirected(self) -> Graph:
        """Return the symmetrized simple graph (what the paper measures)."""
        if self.num_arcs == 0:
            return Graph.empty(self.num_nodes)
        return Graph.from_edges(self.arc_array(), num_nodes=self.num_nodes)

    @classmethod
    def from_undirected(cls, graph: Graph) -> "DiGraph":
        """Return the digraph with both orientations of every edge."""
        edges = graph.edge_array()
        if edges.size == 0:
            return cls.empty(graph.num_nodes)
        both = np.concatenate([edges, edges[:, ::-1]])
        return cls.from_arcs(both, num_nodes=graph.num_nodes)

    def reversed(self) -> "DiGraph":
        """Return the digraph with every arc flipped."""
        return DiGraph(
            self._in_indptr.copy(),
            self._in_indices.copy(),
            self._out_indptr.copy(),
            self._out_indices.copy(),
        )

    def reciprocity(self) -> float:
        """Return the fraction of arcs whose reverse also exists.

        Social-trust digraphs differ sharply here (Epinions trust is
        ~40% reciprocal; co-authorship symmetrizations are 100%).
        """
        if self.num_arcs == 0:
            raise GraphError("reciprocity of an arcless digraph is undefined")
        reciprocal = sum(1 for u, v in self.arcs() if self.has_arc(v, u))
        return reciprocal / self.num_arcs

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_nodes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            np.array_equal(self._out_indptr, other._out_indptr)
            and np.array_equal(self._out_indices, other._out_indices)
        )

    def __hash__(self) -> int:
        return hash(
            (self.num_nodes, self.num_arcs, self._out_indices.tobytes())
        )

    def __repr__(self) -> str:
        return f"DiGraph(num_nodes={self.num_nodes}, num_arcs={self.num_arcs})"

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise NodeNotFoundError(int(node), self.num_nodes)
