"""Directed social graph generators.

The directed analogs mirror how Wiki-vote / Epinions / Slashdot arcs
actually form: new members express trust toward established
(high-in-degree) members, and a fraction of arcs is reciprocated.  The
``reciprocity`` knob spans asymmetric-ballot graphs (~0.05) through
mutual-friend graphs (~1.0, equivalent to an undirected graph).
"""

from __future__ import annotations

import numpy as np

from repro.digraph.core import DiGraph
from repro.errors import GeneratorError

__all__ = ["directed_preferential_attachment", "random_digraph"]


def directed_preferential_attachment(
    num_nodes: int,
    out_links: int,
    reciprocity: float = 0.3,
    seed: int = 0,
) -> DiGraph:
    """Grow a directed trust graph by in-degree preferential attachment.

    Each arriving node points ``out_links`` arcs at existing nodes
    chosen proportionally to (1 + in-degree); each new arc is
    reciprocated independently with probability ``reciprocity``.
    """
    if out_links < 1:
        raise GeneratorError("out_links must be at least 1")
    if num_nodes <= out_links:
        raise GeneratorError("num_nodes must exceed out_links")
    if not 0.0 <= reciprocity <= 1.0:
        raise GeneratorError("reciprocity must be in [0, 1]")
    rng = np.random.default_rng(seed)
    arcs: list[tuple[int, int]] = []
    # seed: a directed cycle over the first out_links + 1 nodes
    seed_size = out_links + 1
    attractiveness: list[int] = []
    for u in range(seed_size):
        v = (u + 1) % seed_size
        arcs.append((u, v))
        attractiveness.append(v)
    for new in range(seed_size, num_nodes):
        targets: set[int] = set()
        while len(targets) < out_links:
            if rng.random() < 0.2:  # uniform exploration keeps tails honest
                pick = int(rng.integers(new))
            else:
                pick = attractiveness[int(rng.integers(len(attractiveness)))]
            if pick != new:
                targets.add(pick)
        for target in sorted(targets):
            arcs.append((new, target))
            attractiveness.append(target)
            if rng.random() < reciprocity:
                arcs.append((target, new))
                attractiveness.append(new)
    return DiGraph.from_arcs(arcs, num_nodes=num_nodes)


def random_digraph(num_nodes: int, num_arcs: int, seed: int = 0) -> DiGraph:
    """Return a uniform random simple digraph with exactly ``num_arcs`` arcs."""
    if num_nodes < 0:
        raise GeneratorError("num_nodes must be non-negative")
    max_arcs = num_nodes * (num_nodes - 1)
    if not 0 <= num_arcs <= max_arcs:
        raise GeneratorError(f"num_arcs must be in [0, {max_arcs}]")
    rng = np.random.default_rng(seed)
    chosen: set[tuple[int, int]] = set()
    while len(chosen) < num_arcs:
        u = int(rng.integers(num_nodes))
        v = int(rng.integers(num_nodes))
        if u != v:
            chosen.add((u, v))
    return DiGraph.from_arcs(sorted(chosen), num_nodes=num_nodes)
