"""High-level experiment runners: one function per paper table/figure.

Each runner measures the relevant property over dataset analogs and
returns plain data structures; the scripts under ``benchmarks/`` wrap
them with pytest-benchmark and print the paper-shaped output.  They are
also the public "reproduce experiment N" API for library users.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import spearman
from repro.cores.statistics import CoreStructure, core_structure, coreness_ecdf
from repro.datasets import dataset_spec, load_dataset
from repro.expansion.envelope import (
    ExpansionSummary,
    aggregate_by_set_size,
    envelope_expansion,
    expansion_factor_series,
)
from repro.mixing.sampling import MixingProfile, sampled_mixing_profile
from repro.mixing.spectral import slem
from repro.store import ArtifactStore, memoize
from repro.sybil.harness import DefenseOutcome, gatekeeper_table_row

__all__ = [
    "DatasetSummary",
    "table1_dataset_summary",
    "figure1_mixing_profiles",
    "figure2_coreness_ecdfs",
    "table2_gatekeeper",
    "figure3_expansion_summaries",
    "figure4_expansion_factors",
    "figure5_core_structures",
    "mixing_core_correlation",
    "expansion_mixing_correlation",
    "betweenness_distributions",
    "mixing_heterogeneity",
]


@dataclass(frozen=True)
class DatasetSummary:
    """One Table-I row: analog sizes plus the measured SLEM."""

    name: str
    num_nodes: int
    num_edges: int
    slem: float
    paper_nodes: int
    paper_edges: int
    mixing_regime: str


def table1_dataset_summary(
    datasets: list[str],
    scale: float = 1.0,
    seed: int = 0,
    store: ArtifactStore | None = None,
) -> list[DatasetSummary]:
    """Measure Table I (n, m, second largest eigenvalue) per analog.

    ``store`` memoizes the per-graph SLEM through an artifact cache, so
    repeated sweeps over the same analogs are warm.
    """
    rows = []
    for name in datasets:
        spec = dataset_spec(name)
        graph = load_dataset(name, scale=scale, seed=seed)
        mu = memoize(store, graph, "slem", {}, lambda: slem(graph))
        rows.append(
            DatasetSummary(
                name=name,
                num_nodes=graph.num_nodes,
                num_edges=graph.num_edges,
                slem=mu,
                paper_nodes=spec.paper_nodes,
                paper_edges=spec.paper_edges,
                mixing_regime=spec.mixing_regime,
            )
        )
    return rows


def figure1_mixing_profiles(
    datasets: list[str],
    walk_lengths: list[int] | None = None,
    num_sources: int = 100,
    scale: float = 1.0,
    seed: int = 0,
    strategy: str = "batched",
    chunk_size: int | None = None,
    workers: int | None = None,
    store: ArtifactStore | None = None,
) -> dict[str, MixingProfile]:
    """Measure Figure 1: sampled TVD-vs-walk-length per analog.

    ``strategy``/``chunk_size``/``workers`` select the walk engine as in
    :func:`repro.mixing.sampled_mixing_profile`; they change only the
    execution schedule (results are byte-identical), so they stay out
    of the ``store`` cache key.
    """
    lengths = walk_lengths or [1, 2, 3, 4, 5, 7, 10, 15, 20, 30, 40, 50]
    out = {}
    for name in datasets:
        graph = load_dataset(name, scale=scale, seed=seed)
        out[name] = memoize(
            store,
            graph,
            "mixing",
            {"walk_lengths": lengths, "num_sources": num_sources, "seed": seed},
            lambda graph=graph: sampled_mixing_profile(
                graph,
                walk_lengths=lengths,
                num_sources=num_sources,
                seed=seed,
                strategy=strategy,
                chunk_size=chunk_size,
                workers=workers,
            ),
        )
    return out


def figure2_coreness_ecdfs(
    datasets: list[str],
    scale: float = 1.0,
    seed: int = 0,
    store: ArtifactStore | None = None,
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Measure Figure 2: coreness ECDF per analog."""
    out = {}
    for name in datasets:
        graph = load_dataset(name, scale=scale, seed=seed)

        def ecdf_dict(graph=graph):
            values, fractions = coreness_ecdf(graph)
            return {"values": values, "fractions": fractions}

        cached = memoize(store, graph, "coreness_ecdf", {}, ecdf_dict)
        out[name] = (cached["values"], cached["fractions"])
    return out


def table2_gatekeeper(
    datasets: list[str] | None = None,
    attack_edges: dict[str, int] | None = None,
    admission_factors: list[float] | None = None,
    num_controllers: int = 3,
    scale: float = 1.0,
    seed: int = 0,
    store: ArtifactStore | None = None,
) -> list[DefenseOutcome]:
    """Run Table II: GateKeeper over the paper's four graphs.

    The paper uses Physics, Facebook, LiveJournal and Slashdot with a
    few hundred attack edges each; attack-edge counts scale with the
    analog sizes by default.
    """
    names = datasets or ["physics2", "facebook_a", "livejournal_a", "slashdot0811"]
    outcomes: list[DefenseOutcome] = []
    for name in names:
        graph = load_dataset(name, scale=scale, seed=seed)
        edges = (attack_edges or {}).get(name, max(graph.num_nodes // 100, 5))
        outcomes.extend(
            memoize(
                store,
                graph,
                "gatekeeper",
                {
                    "dataset": name,
                    "num_attack_edges": edges,
                    "admission_factors": admission_factors,
                    "num_controllers": num_controllers,
                    "seed": seed,
                },
                lambda graph=graph, name=name, edges=edges: gatekeeper_table_row(
                    graph,
                    dataset=name,
                    num_attack_edges=edges,
                    admission_factors=admission_factors,
                    num_controllers=num_controllers,
                    seed=seed,
                ),
                # v2: distributor walks moved onto the vectorized engine
                version=2,
            )
        )
    return outcomes


def figure3_expansion_summaries(
    datasets: list[str],
    num_sources: int | None = None,
    scale: float = 1.0,
    seed: int = 0,
    strategy: str = "batched",
    chunk_size: int | None = None,
    workers: int | None = None,
    store: ArtifactStore | None = None,
) -> dict[str, ExpansionSummary]:
    """Measure Figure 3: min/mean/max |N(S)| per unique |S| per analog.

    ``num_sources=None`` uses every node as a core exactly as the paper
    does; pass a count to sample sources on the larger analogs.
    ``strategy``/``chunk_size``/``workers`` select the BFS engine as in
    :func:`repro.expansion.envelope_expansion`; only the expensive
    :class:`ExpansionMeasurement` is memoized through ``store`` (the
    aggregation is cheap and recomputed).
    """
    out = {}
    for name in datasets:
        graph = load_dataset(name, scale=scale, seed=seed)
        measurement = _memoized_expansion(
            store, graph, num_sources, seed, strategy, chunk_size, workers
        )
        out[name] = aggregate_by_set_size(measurement)
    return out


def _memoized_expansion(
    store, graph, num_sources, seed, strategy, chunk_size, workers
):
    """Envelope expansion through the artifact store (engine knobs
    excluded from the key; the engines are byte-equivalent)."""
    return memoize(
        store,
        graph,
        "expansion",
        {"num_sources": num_sources, "seed": seed},
        lambda: envelope_expansion(
            graph,
            num_sources=num_sources,
            seed=seed,
            strategy=strategy,
            chunk_size=chunk_size,
            workers=workers,
        ),
    )


def figure4_expansion_factors(
    datasets: list[str],
    num_sources: int | None = None,
    scale: float = 1.0,
    seed: int = 0,
    strategy: str = "batched",
    chunk_size: int | None = None,
    workers: int | None = None,
    store: ArtifactStore | None = None,
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Measure Figure 4: expected expansion factor vs |S| per analog."""
    out = {}
    for name in datasets:
        graph = load_dataset(name, scale=scale, seed=seed)
        measurement = _memoized_expansion(
            store, graph, num_sources, seed, strategy, chunk_size, workers
        )
        out[name] = expansion_factor_series(measurement)
    return out


def figure5_core_structures(
    datasets: list[str],
    scale: float = 1.0,
    seed: int = 0,
    store: ArtifactStore | None = None,
) -> dict[str, CoreStructure]:
    """Measure Figure 5: nu'_k and connected-core counts per analog."""
    out = {}
    for name in datasets:
        graph = load_dataset(name, scale=scale, seed=seed)
        out[name] = memoize(
            store, graph, "cores", {}, lambda graph=graph: core_structure(graph)
        )
    return out


def _mixing_speed_score(profile: MixingProfile) -> float:
    """Scalar mixing speed: area under (1 - TVD) over walk length.

    Larger means faster mixing (TVD drops earlier).
    """
    return float(np.trapezoid(1.0 - profile.mean, profile.walk_lengths))


def mixing_core_correlation(
    datasets: list[str],
    scale: float = 1.0,
    num_sources: int = 50,
    seed: int = 0,
) -> tuple[float, dict[str, tuple[float, float]]]:
    """Ablation: rank-correlate mixing speed with core cohesion.

    The per-dataset core statistic is *single-core persistence*: the
    fraction of core orders k at which the k-core is still one connected
    component.  Fast mixers score 1.0 (one big core at every k, Figure
    5 f-j); slow mixers fragment early and score lower.  Returns
    ``(spearman, {name: (mixing_score, persistence)})``; the paper's
    Section V claim predicts a positive correlation.
    """
    scores: dict[str, tuple[float, float]] = {}
    for name in datasets:
        graph = load_dataset(name, scale=scale, seed=seed)
        profile = sampled_mixing_profile(
            graph,
            walk_lengths=[1, 2, 4, 8, 16, 32],
            num_sources=num_sources,
            seed=seed,
        )
        structure = core_structure(graph)
        persistence = float(np.mean(structure.num_cores == 1))
        scores[name] = (_mixing_speed_score(profile), persistence)
    values = np.array(list(scores.values()))
    return spearman(values[:, 0], values[:, 1]), scores


def expansion_mixing_correlation(
    datasets: list[str],
    scale: float = 1.0,
    num_sources: int = 50,
    seed: int = 0,
) -> tuple[float, dict[str, tuple[float, float]]]:
    """Ablation: rank-correlate expansion quality with mixing speed.

    Expansion quality is the mean expansion factor over envelopes of
    size <= n/2 (the Eq. 3 domain); Section V argues it is analogous to
    the mixing time.
    """
    scores: dict[str, tuple[float, float]] = {}
    for name in datasets:
        graph = load_dataset(name, scale=scale, seed=seed)
        profile = sampled_mixing_profile(
            graph,
            walk_lengths=[1, 2, 4, 8, 16, 32],
            num_sources=num_sources,
            seed=seed,
        )
        measurement = envelope_expansion(graph, num_sources=num_sources, seed=seed)
        half = graph.num_nodes // 2
        mask = measurement.set_sizes <= half
        factors = measurement.expansion_factors[mask]
        quality = float(factors.mean()) if factors.size else 0.0
        scores[name] = (quality, _mixing_speed_score(profile))
    values = np.array(list(scores.values()))
    return spearman(values[:, 0], values[:, 1]), scores


def betweenness_distributions(
    datasets: list[str],
    num_sources: int = 50,
    scale: float = 1.0,
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """Companion study: the distribution of shortest-path betweenness.

    The paper's introduction cites the authors' betweenness measurement
    (betweenness underpins the Quercia-Hailes Sybil defense and DTN
    routing).  Returns per-dataset summary statistics of the sampled
    betweenness distribution: mean, median, p99, max, and the Gini
    coefficient (how concentrated shortest paths are on few brokers —
    high for hub-routed fast mixers, lower for community meshes).
    """
    from repro.graph.centrality import betweenness_centrality

    out: dict[str, dict[str, float]] = {}
    rng = np.random.default_rng(seed)
    for name in datasets:
        graph = load_dataset(name, scale=scale, seed=seed)
        sources = rng.choice(
            graph.num_nodes,
            size=min(num_sources, graph.num_nodes),
            replace=False,
        )
        scores = betweenness_centrality(graph, sources=sources)
        ordered = np.sort(scores)
        n = ordered.size
        cumulative = np.cumsum(ordered)
        gini = float(
            (n + 1 - 2 * (cumulative / cumulative[-1]).sum()) / n
        ) if cumulative[-1] > 0 else 0.0
        out[name] = {
            "mean": float(scores.mean()),
            "median": float(np.median(scores)),
            "p99": float(np.percentile(scores, 99)),
            "max": float(scores.max()),
            "gini": gini,
        }
    return out


def mixing_heterogeneity(
    datasets: list[str],
    walk_length: int = 20,
    num_sources: int = 100,
    scale: float = 1.0,
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """Per-source mixing spread (the Section III motivation for sampling).

    The paper prefers the sampling method over the SLEM bound because
    the bound "accounts only for the poorest mixing source", hiding the
    richer per-source structure.  This experiment quantifies that
    structure: at a fixed walk length, the TVD distribution across
    sampled sources — min, median, p90, max and the max/min spread.
    Slow community graphs show a wide spread (sources inside tight
    communities mix far slower than bridge nodes); fast graphs are
    homogeneous.
    """
    out: dict[str, dict[str, float]] = {}
    for name in datasets:
        graph = load_dataset(name, scale=scale, seed=seed)
        profile = sampled_mixing_profile(
            graph,
            walk_lengths=[walk_length],
            num_sources=num_sources,
            seed=seed,
        )
        values = profile.tvd[:, 0]
        out[name] = {
            "min": float(values.min()),
            "median": float(np.median(values)),
            "p90": float(np.percentile(values, 90)),
            "max": float(values.max()),
            "spread": float(values.max() - values.min()),
        }
    return out
