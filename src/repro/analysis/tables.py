"""Plain-text table rendering for benchmark output.

The benchmark harness prints the paper's tables and figure series as
aligned text so runs are easy to eyeball and diff; no plotting stack is
required offline.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render rows as an aligned text table.

    Cells are stringified with ``str``; floats should be pre-formatted
    by the caller for stable precision.
    """
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    xs: Sequence[object],
    ys: Sequence[object],
    x_label: str = "x",
    y_label: str = "y",
    title: str | None = None,
    max_points: int = 25,
) -> str:
    """Render an (x, y) series as two aligned columns.

    Long series are subsampled evenly to ``max_points`` rows so figure
    reproductions stay readable in terminal output.
    """
    if len(xs) != len(ys):
        raise ValueError("series lengths differ")
    count = len(xs)
    if count > max_points:
        step = max(count // max_points, 1)
        picks = list(range(0, count, step))
        if picks[-1] != count - 1:
            picks.append(count - 1)
    else:
        picks = list(range(count))
    rows = [(xs[i], ys[i]) for i in picks]
    return format_table([x_label, y_label], rows, title=title)
