"""Persist measurement results as JSON.

The expensive measurements (all-source expansion, large mixing sweeps,
GateKeeper runs) are worth caching; this module round-trips the
library's result dataclasses through plain JSON so experiment scripts
can checkpoint and diff runs, and so :class:`repro.store.ArtifactStore`
can serialize stage artifacts.

Result types are declared in a registry: any frozen result dataclass
registered through :func:`register_result_type` round-trips generically
(field by field), and two structural types get custom codecs —
:class:`repro.graph.Graph` (CSR arrays) and
:class:`repro.sybil.tickets.TicketPlan` (graph + source + BFS levels).
Unregistered types fail loudly with a :class:`ReproError` naming the
offending type; dictionaries with non-string keys are preserved via an
explicit pairs encoding instead of being silently stringified.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.anonymity.mixes import AnonymityProfile
from repro.cores.statistics import CoreStructure
from repro.dht.whanau import LookupResult
from repro.dtn.simbet import DeliveryStats
from repro.errors import ReproError
from repro.expansion.envelope import (
    ExpansionMeasurement,
    ExpansionSummary,
    SourceExpansion,
)
from repro.graph.core import Graph
from repro.mixing.sampling import MixingProfile
from repro.mixing.spectral import MixingBounds
from repro.sybil.attack import SybilAttack
from repro.sybil.comparison import DefenseScores
from repro.sybil.escape import EscapeMeasurement
from repro.sybil.fusion import (
    BeliefPropagationResult,
    FusionConfig,
    PriorConfig,
    SybilFrameResult,
    SybilFuseResult,
)
from repro.sybil.gatekeeper import GateKeeperConfig, GateKeeperResult
from repro.sybil.harness import DefenseOutcome
from repro.sybil.sumup import SumUpResult
from repro.sybil.sybilinfer import SybilInferResult
from repro.sybil.sybilrank import SybilRankResult
from repro.sybil.tickets import TicketDistribution, TicketPlan

__all__ = [
    "CODEC_VERSION",
    "register_result_type",
    "registered_result_types",
    "save_results",
    "load_results",
    "to_jsonable",
    "from_jsonable",
]

#: Bump when the wire format changes incompatibly; the artifact store
#: folds this into every cache key, so stale entries are invalidated
#: rather than mis-decoded.
CODEC_VERSION = 2

_TYPE_KEY = "__repro_type__"

#: Registered dataclasses, round-tripped generically field by field.
_REGISTRY: dict[str, type] = {}

#: Dataclasses whose home module imports :mod:`repro.store` (which in
#: turn loads this codec) — resolved on first use to break the cycle.
_LAZY_TYPES = {
    "DatasetSummary": "repro.analysis.experiments",
    "SnapshotMetrics": "repro.dynamics.tracking",
    "PrivacyPoint": "repro.privacy.frontier",
    "PrivacyFrontier": "repro.privacy.frontier",
    "GraphDelta": "repro.dynamics.evolution",
    "CompactionStats": "repro.serve.service",
    "ServiceStats": "repro.serve.service",
    "LatencySummary": "repro.serve.loadgen",
    "LoadReport": "repro.serve.loadgen",
}


def register_result_type(cls: type) -> type:
    """Register a dataclass with the results codec; usable as a decorator.

    Every field value must itself be serializable (scalars, numpy
    arrays, other registered types, containers thereof).
    """
    if not dataclasses.is_dataclass(cls):
        raise ReproError(
            f"only dataclasses can be registered with the results codec, "
            f"got {cls!r}"
        )
    existing = _REGISTRY.get(cls.__name__)
    if existing is not None and existing is not cls:
        raise ReproError(
            f"a different type named {cls.__name__!r} is already registered"
        )
    _REGISTRY[cls.__name__] = cls
    return cls


def registered_result_types() -> tuple[type, ...]:
    """Return every registered result dataclass (lazy entries resolved)."""
    for name in list(_LAZY_TYPES):
        _resolve_lazy(name)
    return tuple(_REGISTRY.values())


def _resolve_lazy(name: str) -> type | None:
    if name in _REGISTRY:
        return _REGISTRY[name]
    module_path = _LAZY_TYPES.get(name)
    if module_path is None:
        return None
    import importlib

    cls = getattr(importlib.import_module(module_path), name)
    return register_result_type(cls)


for _cls in (
    AnonymityProfile,
    BeliefPropagationResult,
    CoreStructure,
    DefenseOutcome,
    DefenseScores,
    DeliveryStats,
    EscapeMeasurement,
    ExpansionMeasurement,
    ExpansionSummary,
    FusionConfig,
    GateKeeperConfig,
    GateKeeperResult,
    LookupResult,
    MixingBounds,
    MixingProfile,
    PriorConfig,
    SourceExpansion,
    SumUpResult,
    SybilAttack,
    SybilFrameResult,
    SybilFuseResult,
    SybilInferResult,
    SybilRankResult,
    TicketDistribution,
):
    register_result_type(_cls)
del _cls


def _encode(obj: Any) -> Any:
    if isinstance(obj, np.ndarray):
        return {_TYPE_KEY: "ndarray", "data": obj.tolist(), "dtype": str(obj.dtype)}
    if isinstance(obj, Graph):
        return {
            _TYPE_KEY: "Graph",
            "indptr": _encode(obj.indptr),
            "indices": _encode(obj.indices),
        }
    if isinstance(obj, TicketPlan):
        return {
            _TYPE_KEY: "TicketPlan",
            "graph": _encode(obj._graph),
            "source": obj.source,
            "distances": _encode(obj.distances),
        }
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        name = type(obj).__name__
        cls = _REGISTRY.get(name) or _resolve_lazy(name)
        if cls is None or cls is not type(obj):
            raise ReproError(
                f"cannot serialize unregistered dataclass "
                f"{type(obj).__name__!r}; register it with "
                f"repro.analysis.persistence.register_result_type"
            )
        out = {_TYPE_KEY: name}
        for f in dataclasses.fields(obj):
            out[f.name] = _encode(getattr(obj, f.name))
        return out
    if isinstance(obj, dict):
        if all(isinstance(k, str) for k in obj):
            return {str(k): _encode(v) for k, v in obj.items()}
        # Non-string keys (e.g. TicketDistribution.edge_tickets' (u, v)
        # tuples) are preserved as explicit pairs instead of being
        # stringified into unrecoverable JSON keys.
        return {
            _TYPE_KEY: "pairs",
            "items": [
                [_encode(list(k) if isinstance(k, tuple) else k), _encode(v)]
                for k, v in obj.items()
            ],
        }
    if isinstance(obj, (list, tuple)):
        return [_encode(v) for v in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise ReproError(f"cannot serialize object of type {type(obj).__name__}")


def _decode(obj: Any) -> Any:
    if isinstance(obj, dict):
        kind = obj.get(_TYPE_KEY)
        if kind == "ndarray":
            return np.asarray(obj["data"], dtype=obj["dtype"])
        if kind == "Graph":
            return Graph(_decode(obj["indptr"]), _decode(obj["indices"]))
        if kind == "TicketPlan":
            return TicketPlan(
                _decode(obj["graph"]),
                int(obj["source"]),
                distances=_decode(obj["distances"]),
            )
        if kind == "pairs":
            return {
                (tuple(k) if isinstance(k, list) else k): v
                for k, v in (
                    (_decode(pk), _decode(pv)) for pk, pv in obj["items"]
                )
            }
        if kind is not None:
            cls = _REGISTRY.get(kind) or _resolve_lazy(kind)
            if cls is None:
                raise ReproError(
                    f"cannot deserialize unknown result type {kind!r}"
                )
            fields = {
                k: _decode(v) for k, v in obj.items() if k != _TYPE_KEY
            }
            return cls(**fields)
        return {k: _decode(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_decode(v) for v in obj]
    return obj


def to_jsonable(results: Any) -> Any:
    """Encode a result structure to JSON-ready plain data.

    Raises :class:`ReproError` naming the offending type when a value
    is not serializable.
    """
    return _encode(results)


def from_jsonable(payload: Any) -> Any:
    """Inverse of :func:`to_jsonable`."""
    return _decode(payload)


def save_results(results: Any, path: str | Path) -> None:
    """Serialize a (possibly nested) result structure to JSON.

    Supports dicts/lists of every registered result dataclass (see
    :func:`registered_result_types`), :class:`~repro.graph.Graph`,
    :class:`~repro.sybil.tickets.TicketPlan`, numpy arrays and plain
    scalars.
    """
    path = Path(path)
    payload = _encode(results)
    path.write_text(json.dumps(payload, indent=1), encoding="utf-8")


def load_results(path: str | Path) -> Any:
    """Load a structure previously written by :func:`save_results`."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"no results file at {path}")
    return _decode(json.loads(path.read_text(encoding="utf-8")))
