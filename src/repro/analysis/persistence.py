"""Persist measurement results as JSON.

The expensive measurements (all-source expansion, large mixing sweeps,
GateKeeper runs) are worth caching; this module round-trips the
library's result dataclasses through plain JSON so experiment scripts
can checkpoint and diff runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.cores.statistics import CoreStructure
from repro.errors import ReproError
from repro.expansion.envelope import ExpansionSummary
from repro.mixing.sampling import MixingProfile
from repro.sybil.harness import DefenseOutcome

__all__ = ["save_results", "load_results"]

_TYPE_KEY = "__repro_type__"


def _encode(obj: Any) -> Any:
    if isinstance(obj, np.ndarray):
        return {_TYPE_KEY: "ndarray", "data": obj.tolist(), "dtype": str(obj.dtype)}
    if isinstance(obj, MixingProfile):
        return {
            _TYPE_KEY: "MixingProfile",
            "walk_lengths": _encode(obj.walk_lengths),
            "sources": _encode(obj.sources),
            "tvd": _encode(obj.tvd),
            "lazy": obj.lazy,
        }
    if isinstance(obj, CoreStructure):
        return {
            _TYPE_KEY: "CoreStructure",
            "ks": _encode(obj.ks),
            "node_fraction": _encode(obj.node_fraction),
            "edge_fraction": _encode(obj.edge_fraction),
            "num_cores": _encode(obj.num_cores),
        }
    if isinstance(obj, ExpansionSummary):
        return {
            _TYPE_KEY: "ExpansionSummary",
            "set_sizes": _encode(obj.set_sizes),
            "minimum": _encode(obj.minimum),
            "mean": _encode(obj.mean),
            "maximum": _encode(obj.maximum),
            "count": _encode(obj.count),
        }
    if isinstance(obj, DefenseOutcome):
        return {
            _TYPE_KEY: "DefenseOutcome",
            "dataset": obj.dataset,
            "defense": obj.defense,
            "parameter": obj.parameter,
            "honest_acceptance": obj.honest_acceptance,
            "sybils_per_attack_edge": obj.sybils_per_attack_edge,
            "num_controllers": obj.num_controllers,
        }
    if isinstance(obj, dict):
        return {str(k): _encode(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_encode(v) for v in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise ReproError(f"cannot serialize object of type {type(obj).__name__}")


def _decode(obj: Any) -> Any:
    if isinstance(obj, dict):
        kind = obj.get(_TYPE_KEY)
        if kind == "ndarray":
            return np.asarray(obj["data"], dtype=obj["dtype"])
        if kind == "MixingProfile":
            return MixingProfile(
                walk_lengths=_decode(obj["walk_lengths"]),
                sources=_decode(obj["sources"]),
                tvd=_decode(obj["tvd"]),
                lazy=bool(obj["lazy"]),
            )
        if kind == "CoreStructure":
            return CoreStructure(
                ks=_decode(obj["ks"]),
                node_fraction=_decode(obj["node_fraction"]),
                edge_fraction=_decode(obj["edge_fraction"]),
                num_cores=_decode(obj["num_cores"]),
            )
        if kind == "ExpansionSummary":
            return ExpansionSummary(
                set_sizes=_decode(obj["set_sizes"]),
                minimum=_decode(obj["minimum"]),
                mean=_decode(obj["mean"]),
                maximum=_decode(obj["maximum"]),
                count=_decode(obj["count"]),
            )
        if kind == "DefenseOutcome":
            return DefenseOutcome(
                dataset=obj["dataset"],
                defense=obj["defense"],
                parameter=obj["parameter"],
                honest_acceptance=obj["honest_acceptance"],
                sybils_per_attack_edge=obj["sybils_per_attack_edge"],
                num_controllers=obj["num_controllers"],
            )
        return {k: _decode(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_decode(v) for v in obj]
    return obj


def save_results(results: Any, path: str | Path) -> None:
    """Serialize a (possibly nested) result structure to JSON.

    Supports dicts/lists of the library's result dataclasses
    (MixingProfile, CoreStructure, ExpansionSummary, DefenseOutcome),
    numpy arrays and plain scalars.
    """
    path = Path(path)
    payload = _encode(results)
    path.write_text(json.dumps(payload, indent=1), encoding="utf-8")


def load_results(path: str | Path) -> Any:
    """Load a structure previously written by :func:`save_results`."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"no results file at {path}")
    return _decode(json.loads(path.read_text(encoding="utf-8")))
