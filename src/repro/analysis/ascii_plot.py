"""Terminal line charts for figure reproductions.

The benchmark harness prints tables; for eyeballing curve *shapes*
(Figure 1's TVD decay, Figure 4's expansion decay) an ASCII chart is
friendlier.  No plotting stack required — pure text.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ReproError

__all__ = ["ascii_chart"]

_MARKERS = "ox+*#@%&"


def ascii_chart(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 16,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x, y) series on a shared-axis ASCII canvas.

    Each series gets a marker character; the legend maps markers back
    to names.  Axes are linear and auto-scaled to the pooled data.
    """
    if not series:
        raise ReproError("at least one series is required")
    if width < 8 or height < 4:
        raise ReproError("canvas too small")
    if len(series) > len(_MARKERS):
        raise ReproError(f"at most {len(_MARKERS)} series supported")
    all_x = np.concatenate([np.asarray(xs, float) for xs, _ in series.values()])
    all_y = np.concatenate([np.asarray(ys, float) for _, ys in series.values()])
    if all_x.size == 0:
        raise ReproError("series are empty")
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0
    canvas = [[" "] * width for _ in range(height)]
    for marker, (name, (xs, ys)) in zip(_MARKERS, series.items()):
        for x, y in zip(np.asarray(xs, float), np.asarray(ys, float)):
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = height - 1 - int(round((y - y_lo) / y_span * (height - 1)))
            canvas[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:.3g}"
    bottom_label = f"{y_lo:.3g}"
    pad = max(len(top_label), len(bottom_label))
    for i, row in enumerate(canvas):
        if i == 0:
            prefix = top_label.rjust(pad)
        elif i == height - 1:
            prefix = bottom_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row)}")
    axis = " " * pad + " +" + "-" * width
    lines.append(axis)
    x_axis = (
        " " * pad
        + "  "
        + f"{x_lo:.3g}".ljust(width - 8)
        + f"{x_hi:.3g}".rjust(8)
    )
    lines.append(x_axis)
    legend = "  ".join(
        f"{marker}={name}" for marker, name in zip(_MARKERS, series)
    )
    lines.append(f"{y_label} vs {x_label}:  {legend}")
    return "\n".join(lines)
