"""Experiment runners (one per paper table/figure), stats and tables."""

from repro.analysis.experiments import (
    DatasetSummary,
    betweenness_distributions,
    expansion_mixing_correlation,
    figure1_mixing_profiles,
    figure2_coreness_ecdfs,
    figure3_expansion_summaries,
    figure4_expansion_factors,
    figure5_core_structures,
    mixing_core_correlation,
    mixing_heterogeneity,
    table1_dataset_summary,
    table2_gatekeeper,
)
from repro.analysis.ascii_plot import ascii_chart
from repro.analysis.persistence import (
    load_results,
    register_result_type,
    registered_result_types,
    save_results,
)
from repro.analysis.report import measurement_report, telemetry_summary
from repro.analysis.stats import ecdf, geometric_mean, spearman, summarize
from repro.analysis.tables import format_series, format_table

__all__ = [
    "DatasetSummary",
    "table1_dataset_summary",
    "figure1_mixing_profiles",
    "figure2_coreness_ecdfs",
    "table2_gatekeeper",
    "figure3_expansion_summaries",
    "figure4_expansion_factors",
    "figure5_core_structures",
    "mixing_core_correlation",
    "expansion_mixing_correlation",
    "betweenness_distributions",
    "mixing_heterogeneity",
    "ecdf",
    "spearman",
    "summarize",
    "geometric_mean",
    "format_table",
    "format_series",
    "ascii_chart",
    "save_results",
    "load_results",
    "register_result_type",
    "registered_result_types",
    "measurement_report",
    "telemetry_summary",
]
