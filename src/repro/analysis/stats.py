"""Statistical helpers shared by experiments and benchmarks."""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

__all__ = ["ecdf", "spearman", "summarize", "geometric_mean"]


def ecdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted unique values, cumulative fraction <= value)``."""
    values = np.asarray(values)
    if values.size == 0:
        raise ReproError("ECDF of an empty sample is undefined")
    unique, counts = np.unique(values, return_counts=True)
    return unique, np.cumsum(counts) / values.size


def spearman(first: np.ndarray, second: np.ndarray) -> float:
    """Return the Spearman rank correlation of two samples."""
    a = np.asarray(first, dtype=float)
    b = np.asarray(second, dtype=float)
    if a.size != b.size or a.size < 2:
        raise ReproError("samples must match in length (>= 2)")

    def _ranks(values: np.ndarray) -> np.ndarray:
        order = np.argsort(values, kind="stable")
        ranks = np.empty(values.size)
        ranks[order] = np.arange(values.size, dtype=float)
        # average ranks over ties
        unique, inverse, counts = np.unique(
            values, return_inverse=True, return_counts=True
        )
        sums = np.zeros(unique.size)
        np.add.at(sums, inverse, ranks)
        return sums[inverse] / counts[inverse]

    ra, rb = _ranks(a), _ranks(b)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = np.sqrt((ra**2).sum() * (rb**2).sum())
    if denom == 0:
        return 0.0
    return float((ra * rb).sum() / denom)


def summarize(values: np.ndarray) -> dict[str, float]:
    """Return min/median/mean/max/std of a sample as a dict."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ReproError("cannot summarize an empty sample")
    return {
        "min": float(values.min()),
        "median": float(np.median(values)),
        "mean": float(values.mean()),
        "max": float(values.max()),
        "std": float(values.std()),
    }


def geometric_mean(values: np.ndarray) -> float:
    """Return the geometric mean of strictly positive values."""
    values = np.asarray(values, dtype=float)
    if values.size == 0 or np.any(values <= 0):
        raise ReproError("geometric mean needs strictly positive values")
    return float(np.exp(np.log(values).mean()))
