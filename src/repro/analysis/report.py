"""Full measurement report for one graph, as markdown.

One call measures everything the paper cares about — mixing (both
methods), cores, expansion, centrality concentration, community
structure — plus defense-readiness interpretation, and renders a
markdown document.  Powers ``python -m repro report``.
"""

from __future__ import annotations

import numpy as np

from repro.community import greedy_modularity, modularity
from repro.cores.statistics import core_structure
from repro.errors import GraphError
from repro.expansion.envelope import envelope_expansion
from repro.graph.core import Graph
from repro.graph.metrics import (
    average_clustering,
    average_degree,
    degree_assortativity,
)
from repro.mixing.sampling import (
    is_fast_mixing,
    mixing_time_from_profile,
    sampled_mixing_profile,
)
from repro.mixing.spectral import sinclair_bounds, slem
from repro.store import ArtifactStore, memoize
from repro.telemetry import Telemetry

__all__ = ["measurement_report", "telemetry_summary"]

#: Walk lengths the report's mixing profile evaluates.
_REPORT_WALK_LENGTHS = [1, 2, 5, 10, 20, 40]


def telemetry_summary(telemetry: Telemetry) -> str:
    """Render a recorded :class:`~repro.telemetry.Telemetry` as tables.

    Three sections — spans (wall/CPU totals, activation counts, sorted
    by wall time), counters, gauges — in the same ``format_table``
    style as every other report; the CLI's ``--trace`` flag prints
    this.  Empty sections are omitted; an entirely empty registry
    renders a one-line note instead.
    """
    from repro.analysis.tables import format_table

    sections: list[str] = []
    spans = telemetry.spans
    if spans:
        rows = [
            [
                path,
                s.count,
                f"{s.wall_seconds:.3f}",
                f"{s.cpu_seconds:.3f}",
            ]
            for path, s in sorted(
                spans.items(), key=lambda item: -item[1].wall_seconds
            )
        ]
        sections.append(
            format_table(
                ["span", "count", "wall (s)", "cpu (s)"],
                rows,
                title="Telemetry — spans",
            )
        )
    counters = telemetry.counters
    if counters:
        rows = [
            [name, f"{value:.3f}" if isinstance(value, float) else value]
            for name, value in sorted(counters.items())
        ]
        sections.append(
            format_table(["counter", "value"], rows, title="Telemetry — counters")
        )
    gauges = telemetry.gauges
    if gauges:
        rows = [[name, f"{value:.3f}"] for name, value in sorted(gauges.items())]
        sections.append(
            format_table(["gauge", "value"], rows, title="Telemetry — gauges")
        )
    if not sections:
        return "telemetry: nothing recorded"
    return "\n\n".join(sections)


def measurement_report(
    graph: Graph,
    name: str = "graph",
    num_sources: int = 50,
    seed: int = 0,
    strategy: str = "batched",
    chunk_size: int | None = None,
    workers: int | None = None,
    store: ArtifactStore | None = None,
) -> str:
    """Return a markdown report of every paper-relevant property.

    ``strategy``/``chunk_size``/``workers`` select the BFS engine for
    the expansion measurement, as in
    :func:`repro.expansion.envelope_expansion`.  ``store`` memoizes
    every expensive measurement (mixing, spectral, cores, expansion,
    community) through a content-addressed artifact cache; a warm call
    on the same graph recomputes none of them and returns byte-identical
    text.  Stage names and parameters match
    :func:`repro.pipeline.paper_measurement_pipeline`, so reports and
    pipeline runs share warm artifacts.
    """
    if graph.num_nodes < 3 or graph.num_edges < 2:
        raise GraphError("the report needs a graph with a few nodes and edges")
    lines: list[str] = [f"# Measurement report — {name}", ""]
    lines += [
        "## Size and local structure",
        "",
        f"* nodes: {graph.num_nodes}, edges: {graph.num_edges}",
        f"* average degree: {average_degree(graph):.2f}",
        f"* clustering coefficient: "
        f"{average_clustering(graph, sample=min(400, graph.num_nodes), seed=seed):.3f}",
        f"* degree assortativity: {degree_assortativity(graph):.3f}",
        "",
    ]

    def measure_spectral():
        mu = slem(graph)
        bounds = sinclair_bounds(mu, graph.num_nodes, epsilon=1 / graph.num_nodes)
        fast = is_fast_mixing(graph, num_sources=min(num_sources, 30), seed=seed)
        return {"slem": mu, "bounds": bounds, "fast": bool(fast)}

    spectral = memoize(
        store,
        graph,
        "spectral",
        {"seed": seed, "fast_sources": min(num_sources, 30)},
        measure_spectral,
    )
    mu, bounds, fast = spectral["slem"], spectral["bounds"], spectral["fast"]
    profile = memoize(
        store,
        graph,
        "mixing",
        {
            "walk_lengths": _REPORT_WALK_LENGTHS,
            "num_sources": num_sources,
            "seed": seed,
        },
        lambda: sampled_mixing_profile(
            graph,
            walk_lengths=_REPORT_WALK_LENGTHS,
            num_sources=num_sources,
            seed=seed,
        ),
    )
    t_10 = mixing_time_from_profile(profile, 0.10, aggregate="mean")
    lines += [
        "## Mixing time (Section III-C)",
        "",
        f"* SLEM mu = {mu:.4f} (spectral gap {1 - mu:.4f})",
        f"* Sinclair bounds on T(1/n): [{bounds.lower:.0f}, {bounds.upper:.0f}] steps",
        f"* sampled mean TVD at walk lengths [1, 2, 5, 10, 20, 40]: "
        + ", ".join(f"{v:.3f}" for v in profile.mean),
        f"* walk length to mean TVD < 0.1: "
        + (str(t_10) if t_10 is not None else "> 40 (slow)"),
        f"* fast-mixing classification (T(1/n) = O(log n)): "
        + ("**PASS**" if fast else "**FAIL**"),
        "",
    ]

    structure = memoize(store, graph, "cores", {}, lambda: core_structure(graph))
    cohesive = bool(np.all(structure.num_cores == 1))
    lines += [
        "## Core structure (Sections III-B, V)",
        "",
        f"* degeneracy k_max = {structure.degeneracy}",
        f"* nodes remaining at k_max: {structure.node_fraction[-1]:.1%}",
        f"* max simultaneous connected cores: {int(structure.num_cores.max())}"
        + (" (single cohesive core)" if cohesive else " (fragmented cores)"),
        "",
    ]

    measurement = memoize(
        store,
        graph,
        "expansion",
        {"num_sources": num_sources, "seed": seed},
        lambda: envelope_expansion(
            graph,
            num_sources=min(num_sources, graph.num_nodes),
            seed=seed,
            strategy=strategy,
            chunk_size=chunk_size,
            workers=workers,
        ),
    )
    small = measurement.set_sizes <= max(graph.num_nodes // 10, 1)
    alpha_small = (
        float(measurement.expansion_factors[small].mean()) if small.any() else 0.0
    )
    lines += [
        "## Expansion (Section III-D)",
        "",
        f"* mean expansion factor over envelopes up to n/10: {alpha_small:.2f}",
        f"* envelopes measured: {measurement.set_sizes.size} "
        f"from {measurement.sources.size} cores",
        "",
    ]

    def measure_community():
        labels = greedy_modularity(graph, seed=seed)
        return {"labels": labels, "modularity": float(modularity(graph, labels))}

    community = memoize(
        store, graph, "community", {"seed": seed}, measure_community
    )
    labels, q = community["labels"], community["modularity"]
    lines += [
        "## Community structure (Section V)",
        "",
        f"* modularity of the detected partition: {q:.3f} "
        f"({np.unique(labels).size} communities)",
        "",
    ]

    lines += ["## Defense readiness", ""]
    if fast and cohesive:
        lines.append(
            "Fast mixing with one cohesive core: random-walk Sybil defenses "
            "(SybilLimit, GateKeeper) and walk-sampled overlays (Whānau, "
            "social mixes) should perform as published on this graph."
        )
    elif fast:
        lines.append(
            "Fast mixing but fragmented cores: defenses will work for the "
            "main core; honest users in peripheral fragments will see "
            "degraded acceptance."
        )
    else:
        lines.append(
            "Slow mixing (strong community confinement): random-walk "
            "defenses will reject confined honest users or admit more "
            "Sybils, walk-sampled overlays will have uneven coverage, and "
            "mix routes need impractically long paths. Consider "
            "community-aware parameterization."
        )
    lines.append("")
    return "\n".join(lines)
