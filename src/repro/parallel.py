"""Process-pool execution backend with a shared-memory graph plane.

The thread runner in :mod:`repro.chunking` is capped by the GIL whenever
per-chunk Python overhead dominates — small chunks, shard streaming,
loopy-BP rounds.  This module adds the second backend behind the same
chunking API: a persistent, lazily-spawned **process pool** plus a
**shared-memory graph plane**, selected per call (or ambiently) with
``executor="thread" | "process" | "auto"``.

Architecture
------------

* **Shared-memory plane.**  :func:`publish` places a read-only object
  into ``multiprocessing.shared_memory`` once and returns a small
  picklable *ref* (:class:`GraphRef` / :class:`CsrRef` /
  :class:`ShmSpec`); :class:`~repro.graph.shard.ShardedGraph` inputs
  become a :class:`ShardedRef` naming the on-disk manifest instead
  (workers reopen it with their own bounded-LRU residency).  Graph and
  matrix segments are keyed by ``graph_digest``-style content digests
  and cached in a small parent-side LRU, so repeated engine calls on
  the same graph publish nothing.
* **Worker cache.**  Workers resolve refs lazily via :func:`resolve`
  and keep their own digest-keyed cache of attached graphs/matrices,
  so a warm pool re-attaches nothing across calls.  Per-call segments
  (inputs, state, output buffers) are attached for the duration of one
  dispatch generation and closed when the next call begins.
* **Persistent pool.**  :func:`run_process_chunks` dispatches chunk
  jobs to one module-level ``ProcessPoolExecutor`` (spawn context, so
  the backend is safe on macOS/Windows and under threaded parents)
  that survives across calls and is grown on demand;
  :func:`shutdown` — also registered ``atexit`` — tears it down and
  unlinks every published segment, so no ``/dev/shm`` residue outlives
  the parent even after a worker crash.
* **Determinism.**  Chunk results land in shared pre-allocated output
  buffers through the *same* module-level kernels the thread backend
  runs, so the bit-identity contract with the sequential oracles holds
  across the full executor x chunk_size x workers grid.
* **Telemetry.**  Each task runs under a fresh child
  :class:`~repro.telemetry.Telemetry`; its snapshot is returned with
  the result and merged into the parent registry
  (:meth:`~repro.telemetry.Telemetry.merge`), so ``--metrics-out``
  stays one coherent JSON.  The dispatcher itself reports
  ``parallel.*`` counters and the same ``chunking.*`` fan-out metrics
  as the thread runner.

:func:`execution` scopes an *ambient* executor/worker configuration so
deep call stacks (the pipeline wave scheduler, the CLI) can select the
backend without threading a knob through every signature: engines that
receive ``executor=None``/``workers=None`` inherit the ambient values
via :func:`resolve_execution`.
"""

from __future__ import annotations

import atexit
import hashlib
import itertools
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import get_context, shared_memory
from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

from repro import telemetry
from repro.chunking import default_workers
from repro.errors import GraphError

__all__ = [
    "EXECUTORS",
    "ShmSpec",
    "GraphRef",
    "CsrRef",
    "ShardedRef",
    "execution",
    "resolve_execution",
    "use_processes",
    "publish",
    "share_array",
    "create_output",
    "release",
    "resolve",
    "run_process_chunks",
    "call_token",
    "shutdown",
    "shm_prefix",
]

#: Valid values of the ``executor`` knob.
EXECUTORS = ("thread", "process", "auto")

#: Parent-side LRU bound on published graph/matrix segments.
_PLANE_CACHE = 4

#: Worker-side LRU bound on attached graph/matrix objects.
_WORKER_CACHE = 4


def shm_prefix() -> str:
    """Name prefix of every segment this process publishes.

    Segments are named ``repro_<pid>_<seq>``, so a test session can
    assert that ``/dev/shm`` carries no residue for its own pid after
    :func:`shutdown`.
    """
    return f"repro_{os.getpid()}_"


# ----------------------------------------------------------------------
# ambient execution configuration
# ----------------------------------------------------------------------
_config_lock = threading.Lock()
_ambient_executor: str | None = None
_ambient_workers: int | None = None


def _validate_executor(executor: str | None) -> None:
    if executor is not None and executor not in EXECUTORS:
        raise GraphError(
            f"unknown executor {executor!r}; use one of {EXECUTORS}"
        )


@contextmanager
def execution(
    executor: str | None = None, workers: int | None = None
) -> Iterator[None]:
    """Scope an ambient executor/worker default to a ``with`` block.

    Engines called with ``executor=None`` / ``workers=None`` inside the
    block inherit these values through :func:`resolve_execution` — the
    mechanism by which ``--executor`` on the CLI and the pipeline wave
    scheduler reach every nested engine call without new parameters on
    every function in between.  Explicit per-call arguments always win.
    """
    _validate_executor(executor)
    if workers is not None and workers < 1:
        raise GraphError("workers must be positive")
    global _ambient_executor, _ambient_workers
    with _config_lock:
        previous = (_ambient_executor, _ambient_workers)
        if executor is not None:
            _ambient_executor = executor
        if workers is not None:
            _ambient_workers = workers
    try:
        yield
    finally:
        with _config_lock:
            _ambient_executor, _ambient_workers = previous


def resolve_execution(
    executor: str | None, workers: int | None
) -> tuple[str, int | None]:
    """Resolve the effective ``(executor, workers)`` pair for one call.

    Explicit arguments beat the ambient :func:`execution` configuration,
    which beats the defaults (``"thread"``, ``None``).  ``"auto"``
    becomes ``"process"`` when the effective worker count exceeds one
    and ``"thread"`` otherwise; a process request with no worker count
    gets :func:`repro.chunking.default_workers`.
    """
    _validate_executor(executor)
    with _config_lock:
        ambient_executor, ambient_workers = _ambient_executor, _ambient_workers
    kind = executor if executor is not None else (ambient_executor or "thread")
    if workers is None:
        workers = ambient_workers
    if kind == "auto":
        effective = workers if workers is not None else default_workers()
        kind = "process" if effective > 1 else "thread"
        if kind == "process":
            workers = effective
    elif kind == "process" and workers is None:
        workers = default_workers()
    return kind, workers


def use_processes(kind: str, workers: int | None, num_chunks: int) -> bool:
    """Whether a resolved call should dispatch to the process pool.

    Single-worker or single-chunk plans run on the thread path — there
    is nothing to parallelize, and the thread path is inline (and
    cheaper) in exactly those cases.
    """
    return kind == "process" and workers is not None and workers > 1 and num_chunks > 1


# ----------------------------------------------------------------------
# shared-memory plane (parent side)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShmSpec:
    """Picklable handle to one shared-memory ndarray."""

    name: str
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class GraphRef:
    """Picklable handle to a CSR graph published on the plane."""

    digest: str
    num_nodes: int
    indptr: ShmSpec
    indices: ShmSpec


@dataclass(frozen=True)
class CsrRef:
    """Picklable handle to a scipy CSR/CSC matrix published on the plane."""

    digest: str
    format: str
    shape: tuple[int, int]
    data: ShmSpec
    indices: ShmSpec
    indptr: ShmSpec


@dataclass(frozen=True)
class ShardedRef:
    """Picklable handle to an on-disk sharded graph (reopened by path)."""

    root: str
    digest: str
    max_resident: int | None


class _Plane:
    """Parent-side registry of every live published segment."""

    def __init__(self) -> None:
        self.lock = threading.RLock()
        self.segments: dict[str, shared_memory.SharedMemory] = {}
        self.graphs: OrderedDict[str, GraphRef] = OrderedDict()
        self.matrices: OrderedDict[str, CsrRef] = OrderedDict()
        self.seq = itertools.count()


_plane = _Plane()


def _create_segment(nbytes: int) -> shared_memory.SharedMemory:
    name = f"{shm_prefix()}{next(_plane.seq)}"
    shm = shared_memory.SharedMemory(name=name, create=True, size=max(nbytes, 1))
    with _plane.lock:
        _plane.segments[name] = shm
    telemetry.current().count("parallel.shm_bytes", shm.size)
    return shm


def _segment_view(shm: shared_memory.SharedMemory, spec: ShmSpec) -> np.ndarray:
    return np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)


def share_array(array: np.ndarray) -> ShmSpec:
    """Copy ``array`` into a fresh shared segment and return its spec.

    The caller owns the segment's lifetime: pass the spec to
    :func:`release` when the dispatch that used it completes (or leave
    it for :func:`shutdown` to sweep).
    """
    array = np.ascontiguousarray(array)
    shm = _create_segment(array.nbytes)
    spec = ShmSpec(shm.name, tuple(array.shape), array.dtype.str)
    if array.size:
        _segment_view(shm, spec)[...] = array
    return spec


def create_output(
    shape: tuple[int, ...], dtype: Any, fill: Any = None
) -> tuple[ShmSpec, np.ndarray]:
    """Allocate a shared output buffer; return ``(spec, parent view)``.

    Workers attach via :func:`resolve` and write disjoint chunk slices;
    the parent copies the view out and calls :func:`release`.
    """
    dt = np.dtype(dtype)
    nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
    shm = _create_segment(nbytes)
    spec = ShmSpec(shm.name, tuple(shape), dt.str)
    view = _segment_view(shm, spec)
    if fill is not None and view.size:
        view[...] = fill
    return spec, view


def _discard_segment(shm: shared_memory.SharedMemory) -> None:
    """Close + unlink one owned segment, tolerating live views.

    ``close`` raises :class:`BufferError` while ndarray views of the
    buffer are still alive; the *unlink* must happen regardless — it
    removes the ``/dev/shm`` name immediately, and the memory itself is
    freed when the last mapping is garbage-collected.
    """
    try:
        shm.close()
    except BufferError:
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass


def release(specs: Iterable[ShmSpec | None]) -> None:
    """Unlink per-call segments (graph-plane entries are kept cached)."""
    with _plane.lock:
        for spec in specs:
            if spec is None:
                continue
            shm = _plane.segments.pop(spec.name, None)
            if shm is not None:
                _discard_segment(shm)


def _release_ref(ref: GraphRef | CsrRef) -> None:
    specs = (
        (ref.indptr, ref.indices)
        if isinstance(ref, GraphRef)
        else (ref.data, ref.indices, ref.indptr)
    )
    release(specs)


def _cache_insert(cache: OrderedDict, digest: str, ref: GraphRef | CsrRef) -> None:
    cache[digest] = ref
    cache.move_to_end(digest)
    while len(cache) > _PLANE_CACHE:
        _, evicted = cache.popitem(last=False)
        _release_ref(evicted)


def publish_graph(graph: Any) -> GraphRef:
    """Publish a resident :class:`~repro.graph.core.Graph` (digest-cached)."""
    from repro.store import graph_digest

    digest = graph_digest(graph)
    with _plane.lock:
        ref = _plane.graphs.get(digest)
        if ref is not None:
            _plane.graphs.move_to_end(digest)
            return ref
        ref = GraphRef(
            digest=digest,
            num_nodes=graph.num_nodes,
            indptr=share_array(graph.indptr),
            indices=share_array(graph.indices),
        )
        _cache_insert(_plane.graphs, digest, ref)
        return ref


def publish_matrix(matrix: Any) -> CsrRef:
    """Publish a scipy CSR/CSC matrix, keyed by a content digest.

    Only the compressed formats are supported — they are the only ones
    the engines produce, and rebuilding the same format in the worker
    preserves scipy's reduction order (the bit-identity contract).
    """
    if matrix.format not in ("csr", "csc"):
        raise GraphError(
            f"process backend requires a csr/csc matrix, got {matrix.format!r}"
        )
    hasher = hashlib.sha256(b"repro-matrix-digest-v1")
    hasher.update(matrix.format.encode())
    hasher.update(repr(matrix.shape).encode())
    for array in (matrix.indptr, matrix.indices, matrix.data):
        hasher.update(np.ascontiguousarray(array).tobytes())
    digest = hasher.hexdigest()
    with _plane.lock:
        ref = _plane.matrices.get(digest)
        if ref is not None:
            _plane.matrices.move_to_end(digest)
            return ref
        ref = CsrRef(
            digest=digest,
            format=matrix.format,
            shape=tuple(matrix.shape),
            data=share_array(matrix.data),
            indices=share_array(matrix.indices),
            indptr=share_array(matrix.indptr),
        )
        _cache_insert(_plane.matrices, digest, ref)
        return ref


def publish(obj: Any) -> GraphRef | CsrRef | ShardedRef:
    """Publish a graph-like object and return the matching picklable ref."""
    from repro.graph.core import Graph
    from repro.graph.shard import ShardedGraph

    if isinstance(obj, ShardedGraph):
        return ShardedRef(
            root=str(obj.root),
            digest=obj.graph_digest,
            max_resident=getattr(obj, "_max_resident", None),
        )
    if isinstance(obj, Graph):
        return publish_graph(obj)
    return publish_matrix(obj)


# ----------------------------------------------------------------------
# worker-side resolution
# ----------------------------------------------------------------------
_worker_graphs: OrderedDict[str, tuple[Any, tuple]] = OrderedDict()
_worker_call_arrays: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}
_worker_call: Any = None


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment without adopting its lifetime.

    ``SharedMemory(name=...)`` registers the mapping with the resource
    tracker, which would *unlink* the segment when the worker exits —
    destroying it for the parent and every sibling.  Python 3.13+
    exposes ``track=False``; on older versions registration is
    suppressed during the attach instead.  (Unregistering *after* the
    attach is wrong here: spawn children share the parent's tracker
    process, so a worker-side unregister would erase the parent's own
    registration of the segment.)
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shm(rname: str, rtype: str) -> None:
            if rtype != "shared_memory":  # pragma: no cover - not hit here
                original(rname, rtype)

        resource_tracker.register = _skip_shm
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _begin_call(call: Any) -> None:
    """Drop the previous call's per-call attachments on a new dispatch."""
    global _worker_call
    if call == _worker_call:
        return
    for name in list(_worker_call_arrays):
        shm, view = _worker_call_arrays.pop(name)
        del view
        try:
            shm.close()
        except BufferError:  # a kernel kept a view; GC unmaps it later
            pass
    _worker_call = call


def _worker_cache_put(key: str, value: Any, keepalive: tuple) -> None:
    # Evicted entries are only dropped, not closed: their Graph/matrix
    # may still be referenced by in-flight work, and the mappings unmap
    # when the last view is garbage-collected.
    _worker_graphs[key] = (value, keepalive)
    _worker_graphs.move_to_end(key)
    while len(_worker_graphs) > _WORKER_CACHE:
        _worker_graphs.popitem(last=False)


def resolve(ref: Any) -> Any:
    """Materialize a plane ref inside the current worker process.

    * :class:`ShmSpec` → writable ndarray view (cached per dispatch);
    * :class:`GraphRef` → :class:`~repro.graph.core.Graph` over the
      shared CSR arrays (cached per worker by digest);
    * :class:`CsrRef` → the scipy matrix in its published format
      (cached per worker by digest);
    * :class:`ShardedRef` → :class:`~repro.graph.shard.ShardedGraph`
      reopened from its manifest with the published residency bound
      (cached per worker by digest);
    * anything else is returned unchanged.
    """
    if isinstance(ref, ShmSpec):
        cached = _worker_call_arrays.get(ref.name)
        if cached is not None:
            return cached[1]
        shm = _attach_segment(ref.name)
        view = _segment_view(shm, ref)
        _worker_call_arrays[ref.name] = (shm, view)
        return view
    if isinstance(ref, GraphRef):
        # cache keys are namespaced by ref type: a ShardedGraph's
        # graph_digest equals the digest of the equivalent in-RAM
        # Graph, and the two resolve to different objects
        key = f"graph:{ref.digest}"
        cached = _worker_graphs.get(key)
        if cached is not None:
            _worker_graphs.move_to_end(key)
            return cached[0]
        from repro.graph.core import Graph

        indptr_shm = _attach_segment(ref.indptr.name)
        indices_shm = _attach_segment(ref.indices.name)
        graph = Graph(
            _segment_view(indptr_shm, ref.indptr),
            _segment_view(indices_shm, ref.indices),
        )
        _worker_cache_put(key, graph, (indptr_shm, indices_shm))
        return graph
    if isinstance(ref, CsrRef):
        key = f"matrix:{ref.digest}"
        cached = _worker_graphs.get(key)
        if cached is not None:
            _worker_graphs.move_to_end(key)
            return cached[0]
        import scipy.sparse as sp

        cls = sp.csr_matrix if ref.format == "csr" else sp.csc_matrix
        shms = tuple(
            _attach_segment(spec.name)
            for spec in (ref.data, ref.indices, ref.indptr)
        )
        arrays = tuple(
            _segment_view(shm, spec)
            for shm, spec in zip(shms, (ref.data, ref.indices, ref.indptr))
        )
        matrix = cls(arrays, shape=ref.shape)
        _worker_cache_put(key, matrix, shms)
        return matrix
    if isinstance(ref, ShardedRef):
        key = f"sharded:{ref.digest}"
        cached = _worker_graphs.get(key)
        if cached is not None:
            _worker_graphs.move_to_end(key)
            return cached[0]
        from repro.graph.shard import ShardedGraph

        sharded = ShardedGraph.open(ref.root, max_resident_shards=ref.max_resident)
        _worker_cache_put(key, sharded, ())
        return sharded
    return ref


# ----------------------------------------------------------------------
# the persistent pool and chunk dispatcher
# ----------------------------------------------------------------------
_pool_lock = threading.Lock()
_pool: ProcessPoolExecutor | None = None
_pool_size = 0
_call_counter = itertools.count()


def _get_pool(workers: int) -> ProcessPoolExecutor:
    """The persistent pool, lazily spawned and grown (never shrunk).

    The spawn start method keeps workers import-clean (no inherited
    locks from a threaded parent; the same code path macOS/Windows
    would take), which is why engines that reach this backend must be
    spawn-safe: module-level kernels, picklable payloads.
    """
    global _pool, _pool_size
    with _pool_lock:
        broken = _pool is not None and getattr(_pool, "_broken", False)
        if _pool is None or broken or _pool_size < workers:
            if _pool is not None:
                _pool.shutdown(wait=False, cancel_futures=True)
            size = max(workers, _pool_size)
            _pool = ProcessPoolExecutor(
                max_workers=size, mp_context=get_context("spawn")
            )
            _pool_size = size
            tel = telemetry.current()
            tel.count("parallel.pool_spawns")
            tel.gauge("parallel.pool_size", size)
        return _pool


def _invalidate_pool(pool: ProcessPoolExecutor) -> None:
    global _pool, _pool_size
    with _pool_lock:
        if _pool is pool:
            _pool.shutdown(wait=False, cancel_futures=True)
            _pool = None
            _pool_size = 0


def _run_task(
    fn: Callable[[dict, slice], Any],
    payload: dict,
    chunk: slice,
    span: str | None,
    record: bool,
) -> tuple[Any, dict | None]:
    """Worker entry: run one chunk under a child telemetry registry."""
    _begin_call(payload.get("_call"))
    if not record:
        return fn(payload, chunk), None
    child = telemetry.Telemetry()
    with telemetry.activate(child):
        start = time.perf_counter()
        if span is None:
            result = fn(payload, chunk)
        else:
            with child.span(span):
                result = fn(payload, chunk)
        child.count("chunking.busy_seconds", time.perf_counter() - start)
    return result, child.snapshot()


def probe_chunk(payload: dict, columns: slice) -> tuple[int, int, int]:
    """Diagnostic task: report ``(start, stop, worker pid)``."""
    return columns.start, columns.stop, os.getpid()


def abort_chunk(payload: dict, columns: slice) -> None:
    """Crash-injection task for lifecycle tests: hard-exit the worker."""
    os._exit(int(payload.get("code", 1)))


def call_token() -> tuple[int, int]:
    """Fresh dispatch-generation token for multi-dispatch callers.

    Per-call worker attachments (shared input/output buffers) are
    dropped when a task arrives with a *different* token.  Iterative
    engines — loopy BP dispatches once per round against the same
    buffers — mint one token and pass it to every
    :func:`run_process_chunks` call of the iteration, so workers keep
    their attachments across rounds.
    """
    return (os.getpid(), next(_call_counter))


def run_process_chunks(
    fn: Callable[[dict, slice], Any],
    payload: dict,
    chunks: Sequence[slice],
    workers: int,
    span: str | None = "chunking.chunk",
    chunk_payload: Callable[[slice], dict] | None = None,
    call: tuple[int, int] | None = None,
) -> list[Any]:
    """Dispatch chunk jobs to the persistent process pool.

    ``fn(payload, chunk)`` must be a module-level callable (pickled by
    reference); ``payload`` values may be plane refs, resolved in the
    worker via :func:`resolve`.  ``chunk_payload(chunk)`` contributes
    per-chunk payload entries (e.g. that chunk's seed streams).
    Results are returned in chunk order; the first failing chunk
    re-raises in the parent.  Fan-out telemetry matches the thread
    runner (``chunking.*``) plus ``parallel.*`` dispatch counters, and
    every task's child-telemetry snapshot is merged into the parent
    registry.
    """
    if workers < 2:
        raise GraphError("run_process_chunks requires workers >= 2")
    if not chunks:
        return []
    tel = telemetry.current()
    record = tel.enabled
    pool_size = min(workers, len(chunks))
    pool = _get_pool(pool_size)
    if call is None:
        call = call_token()
    start = time.perf_counter()
    futures = []
    for chunk in chunks:
        task_payload = dict(payload)
        if chunk_payload is not None:
            task_payload.update(chunk_payload(chunk))
        task_payload["_call"] = call
        futures.append(
            pool.submit(_run_task, fn, task_payload, chunk, span, record)
        )
    results: list[Any] = [None] * len(chunks)
    busy = 0.0
    try:
        for i, future in enumerate(futures):
            result, snapshot = future.result()
            results[i] = result
            if snapshot is not None:
                busy += snapshot.get("counters", {}).get(
                    "chunking.busy_seconds", 0.0
                )
                tel.merge(snapshot)
    except BrokenProcessPool:
        _invalidate_pool(pool)
        raise
    if record:
        elapsed = time.perf_counter() - start
        tel.count("chunking.chunks", len(chunks))
        tel.count("chunking.sources", sum(c.stop - c.start for c in chunks))
        tel.count("chunking.parallel_runs")
        tel.count("parallel.process_runs")
        tel.count("parallel.tasks", len(chunks))
        tel.count("parallel.dispatch_seconds", elapsed)
        if elapsed > 0:
            tel.gauge(
                "chunking.worker_utilization",
                min(1.0, busy / (pool_size * elapsed)) if busy else 0.0,
            )
    return results


def shutdown() -> None:
    """Stop the pool and unlink every published segment.

    Idempotent; registered ``atexit``.  Also the recovery path after a
    worker crash (the plane is parent-owned, so a dead worker can never
    leak a segment past this call).
    """
    global _pool, _pool_size
    with _pool_lock:
        if _pool is not None:
            _pool.shutdown(wait=True, cancel_futures=True)
            _pool = None
            _pool_size = 0
    with _plane.lock:
        _plane.graphs.clear()
        _plane.matrices.clear()
        for name in list(_plane.segments):
            _discard_segment(_plane.segments.pop(name))


atexit.register(shutdown)
