"""Streaming generators for multi-million-node mixing analogs.

The registry analogs (:mod:`repro.datasets.registry`) materialize a
full edge list in RAM, which caps them around 50k nodes.  This module
emits edges in bounded ``(k, 2)`` blocks instead, so
:meth:`repro.graph.shard.ShardedGraph.from_edge_blocks` can build
1M-10M-node graphs whose peak build memory is one shard bucket — the
full edge list never exists.

Two regimes mirror the paper's fast/slow mixing dichotomy:

* ``"fast"`` — a preferential-attachment-style analog: besides the
  connectivity path, each node ``u`` draws ``extra_edges_per_node``
  targets ``floor(u * r**attachment_exponent)`` (``r`` uniform), which
  concentrates attachments on early nodes (hubs) and mixes in
  ``O(log n)`` steps, the Wiki-vote/Epinions regime;
* ``"slow"`` — a path of tight communities: nodes mostly attach to
  earlier members of their own contiguous community and only a
  ``bridge_fraction`` of draws escape globally, reproducing the
  tight-knit-community slow mixing of the Physics/DBLP traces.

Determinism: block ``b`` is generated from
``SeedSequence([seed, b])`` regardless of how the iterator is
consumed, so a stream is fully described by
``(num_nodes, regime, seed, block_nodes, spec)`` —
:func:`stream_fingerprint` hashes exactly that tuple for
:mod:`repro.store` keying of downstream artifacts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.errors import DatasetError
from repro.graph.shard import ShardedGraph

__all__ = [
    "StreamSpec",
    "STREAM_REGIMES",
    "stream_analog_edges",
    "stream_fingerprint",
    "build_sharded_analog",
]

#: Bump when block generation changes in a result-affecting way; folded
#: into :func:`stream_fingerprint` so cached artifacts invalidate.
_STREAM_VERSION = 1

_DEFAULT_BLOCK_NODES = 1 << 16


@dataclass(frozen=True)
class StreamSpec:
    """Tunables of one streaming regime.

    ``extra_edges_per_node`` draws per node beyond the connectivity
    path; ``attachment_exponent`` skews global targets toward early
    nodes (hubs) — higher is more skewed; ``community_nodes`` is the
    contiguous community width of the slow regime (ignored by the fast
    one); ``bridge_fraction`` is the slow regime's probability that a
    draw escapes its community.
    """

    regime: str
    extra_edges_per_node: int = 8
    attachment_exponent: float = 3.0
    community_nodes: int = 4096
    bridge_fraction: float = 0.005


#: The two built-in regimes, mirroring the paper's mixing dichotomy.
STREAM_REGIMES: dict[str, StreamSpec] = {
    "fast": StreamSpec(regime="fast", attachment_exponent=3.0),
    "slow": StreamSpec(regime="slow", attachment_exponent=2.0),
}


def _resolve_spec(regime: str | StreamSpec) -> StreamSpec:
    if isinstance(regime, StreamSpec):
        return regime
    spec = STREAM_REGIMES.get(regime)
    if spec is None:
        raise DatasetError(
            f"unknown streaming regime {regime!r}; "
            f"use one of {sorted(STREAM_REGIMES)}"
        )
    return spec


def stream_analog_edges(
    num_nodes: int,
    regime: str | StreamSpec = "fast",
    seed: int = 0,
    block_nodes: int = _DEFAULT_BLOCK_NODES,
) -> Iterator[np.ndarray]:
    """Yield the analog's edges as bounded ``(k, 2)`` int64 blocks.

    Every node ``u >= 1`` contributes the path edge ``(u - 1, u)``
    (guaranteeing connectivity) plus ``extra_edges_per_node`` random
    draws toward earlier nodes; self loops never occur by construction
    and duplicates are legal (the shard builder collapses them).  Block
    ``b`` covers nodes ``[b * block_nodes, (b + 1) * block_nodes)`` and
    is seeded independently, so the stream is deterministic and
    restartable per block.
    """
    if num_nodes < 1:
        raise DatasetError("num_nodes must be positive")
    if block_nodes < 1:
        raise DatasetError("block_nodes must be positive")
    spec = _resolve_spec(regime)
    if spec.regime not in ("fast", "slow"):
        raise DatasetError(f"unknown streaming regime {spec.regime!r}")
    for block_index, start in enumerate(range(0, num_nodes, block_nodes)):
        stop = min(start + block_nodes, num_nodes)
        rng = np.random.default_rng(
            np.random.SeedSequence([int(seed), int(block_index)])
        )
        yield _generate_block(rng, start, stop, num_nodes, spec)


def _generate_block(
    rng: np.random.Generator, start: int, stop: int, num_nodes: int, spec: StreamSpec
) -> np.ndarray:
    nodes = np.arange(max(start, 1), stop, dtype=np.int64)
    path = np.stack([nodes - 1, nodes], axis=1)
    k = int(spec.extra_edges_per_node)
    if k <= 0:
        return path
    sources = np.repeat(np.arange(start, stop, dtype=np.int64), k)
    draws = rng.random(sources.size)
    if spec.regime == "fast":
        targets = np.floor(
            sources * draws**spec.attachment_exponent
        ).astype(np.int64)
        valid = sources >= 1  # node 0 has no earlier target
    else:
        width = int(spec.community_nodes)
        community_lo = (sources // width) * width
        span = sources - community_lo
        local = community_lo + np.floor(span * draws).astype(np.int64)
        bridge_draws = rng.random(sources.size)
        global_targets = np.floor(
            sources * bridge_draws**spec.attachment_exponent
        ).astype(np.int64)
        is_bridge = rng.random(sources.size) < spec.bridge_fraction
        targets = np.where(is_bridge, global_targets, local)
        valid = np.where(is_bridge, sources >= 1, span > 0)
    extra = np.stack([targets[valid], sources[valid]], axis=1)
    return np.concatenate([path, extra], axis=0)


def stream_fingerprint(
    num_nodes: int,
    regime: str | StreamSpec = "fast",
    seed: int = 0,
    block_nodes: int = _DEFAULT_BLOCK_NODES,
) -> str:
    """Return the SHA-256 fingerprint identifying one edge stream.

    Two calls with equal parameters denote byte-identical streams, so
    the fingerprint can key cached artifacts in :mod:`repro.store`
    *before* any edges are generated (the generation stage itself).
    """
    spec = _resolve_spec(regime)
    payload = json.dumps(
        {
            "kind": "repro-stream-analog",
            "version": _STREAM_VERSION,
            "num_nodes": int(num_nodes),
            "seed": int(seed),
            "block_nodes": int(block_nodes),
            "spec": asdict(spec),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def build_sharded_analog(
    root: str | Path,
    num_nodes: int,
    regime: str | StreamSpec = "fast",
    seed: int = 0,
    block_nodes: int = _DEFAULT_BLOCK_NODES,
    num_shards: int | None = None,
    nodes_per_shard: int | None = None,
    max_resident_shards: int | None = None,
) -> ShardedGraph:
    """Stream an analog directly into a sharded on-disk graph.

    The edge stream from :func:`stream_analog_edges` feeds
    :meth:`~repro.graph.shard.ShardedGraph.from_edge_blocks`, so the
    full edge list never materializes; peak memory is one shard bucket
    plus the scatter buffers.
    """
    blocks = stream_analog_edges(
        num_nodes, regime=regime, seed=seed, block_nodes=block_nodes
    )
    return ShardedGraph.from_edge_blocks(
        blocks,
        num_nodes,
        root,
        num_shards=num_shards,
        nodes_per_shard=nodes_per_shard,
        max_resident_shards=max_resident_shards,
    )
