"""Registry of synthetic analogs for the paper's Table-I social graphs."""

from repro.datasets.registry import (
    LARGE_DATASETS,
    MEDIUM_DATASETS,
    SMALL_DATASETS,
    DatasetSpec,
    available_datasets,
    dataset_fingerprint,
    dataset_spec,
    load_dataset,
)
from repro.datasets.streaming import (
    STREAM_REGIMES,
    StreamSpec,
    build_sharded_analog,
    stream_analog_edges,
    stream_fingerprint,
)

__all__ = [
    "DatasetSpec",
    "available_datasets",
    "dataset_spec",
    "dataset_fingerprint",
    "load_dataset",
    "SMALL_DATASETS",
    "MEDIUM_DATASETS",
    "LARGE_DATASETS",
    "StreamSpec",
    "STREAM_REGIMES",
    "stream_analog_edges",
    "stream_fingerprint",
    "build_sharded_analog",
]
