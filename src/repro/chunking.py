"""Shared chunk planning and fan-out for the batched engines.

Both block engines — the multi-source walk engine
(:mod:`repro.markov.batch`) and the multi-source BFS engine
(:mod:`repro.graph.bfs_batch`) — process independent source columns in
contiguous chunks: ``chunk_size`` bounds the per-chunk working set at
``O(n * chunk_size)``, and ``workers`` optionally fans the chunks out
over a thread pool.  Chunks are independent and write into disjoint
pre-allocated slices, so results are deterministic regardless of
scheduling.  This runner uses threads: the shared graph or matrix is
free to share and the pool is free to start.  When per-chunk Python
time is GIL-bound, the engines' ``executor="process"`` knob dispatches
the same chunk plan to :mod:`repro.parallel` instead, which shares the
graph through a shared-memory plane rather than pickling it per worker.

This module holds the one chunk planner and runner both engines share,
so the two engines stay API-identical by construction.

Zero sources are a legal plan: ``resolve_chunks(0, ...)`` returns an
empty chunk list and ``run_chunks`` treats an empty list as a no-op
(never opening a thread pool), so engine entry points handed an empty
source set fall through to an empty result instead of crashing.

Fan-out reports into :mod:`repro.telemetry`: per-chunk spans
(``chunking.chunk``), chunk and source counters, and a worker
utilization gauge (busy time across the pool / pool size x elapsed).
Busy time for the gauge is accumulated *per run* — two overlapping
parallel runs sharing one registry must not see each other's busy
deltas — while the global ``chunking.busy_seconds`` counter still sums
across runs.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

from repro import telemetry
from repro.errors import GraphError

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "default_workers",
    "resolve_chunks",
    "run_chunks",
]

#: Default number of source columns processed per chunk.  Bounds the
#: dense working set (8 bytes/entry for walk blocks, 1-8 bytes for BFS
#: state) at a few MB per thousand nodes while keeping the sparse
#: structure amortized over many columns.
DEFAULT_CHUNK_SIZE = 128

#: Cap on :func:`default_workers` — past this, per-worker dispatch and
#: merge overhead dominates on every workload the repo runs.
MAX_DEFAULT_WORKERS = 8


def default_workers(cap: int = MAX_DEFAULT_WORKERS) -> int:
    """Worker count derived from the machine, for callers with no opinion.

    Uses the scheduling affinity mask when the platform exposes one
    (containers often grant fewer cores than ``os.cpu_count`` reports),
    capped at ``cap``; always at least 1.  The CLI and the benchmarks
    use this instead of hard-coded worker counts.
    """
    try:
        available = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        available = os.cpu_count() or 1
    return max(1, min(available, cap))


def resolve_chunks(
    num_sources: int, chunk_size: int | None, workers: int | None
) -> list[slice]:
    """Split ``num_sources`` columns into contiguous chunk slices.

    ``num_sources == 0`` yields an empty plan (no chunks) regardless of
    ``chunk_size``/``workers`` — it must not trip the positivity check,
    which is about the *requested* chunk size, not the workload.  A
    *negative* count is always a caller bug (the ``range`` below would
    silently underflow to an empty plan) and raises.
    """
    if num_sources < 0:
        raise GraphError(f"num_sources must be non-negative, got {num_sources}")
    if num_sources == 0:
        return []
    if chunk_size is None:
        size = DEFAULT_CHUNK_SIZE
        if workers is not None and workers > 1:
            # Spread the sources across the pool when the default chunk
            # would leave workers idle.
            size = min(size, -(-num_sources // workers))
    else:
        size = int(chunk_size)
    if size < 1:
        raise GraphError("chunk_size must be positive")
    return [slice(lo, min(lo + size, num_sources)) for lo in range(0, num_sources, size)]


def run_chunks(
    run_chunk: Callable[[slice], None],
    chunks: list[slice],
    workers: int | None,
    span: str | None = "chunking.chunk",
) -> None:
    """Execute chunk jobs inline or on a bounded thread pool.

    An empty chunk list is a clean no-op — in particular it never
    constructs a ``ThreadPoolExecutor`` (whose ``max_workers`` must be
    positive).

    ``span`` names the per-chunk telemetry span; pass ``None`` to keep
    the chunk jobs un-spanned (schedulers whose jobs open their own
    spans, like the pipeline's wave runner, use this so their span
    paths stay rooted at the job names).
    """
    if workers is not None and workers < 1:
        raise GraphError("workers must be positive")
    if not chunks:
        return
    tel = telemetry.current()
    # Per-run busy accumulator: the utilization gauge must be computed
    # from *this run's* busy time only.  Snapshotting the cumulative
    # ``chunking.busy_seconds`` counter (the previous scheme) interleaved
    # the deltas of two overlapping parallel runs sharing one registry,
    # corrupting both gauges.
    busy = _BusyAccumulator()
    if tel.enabled:
        run_chunk = _instrumented(tel, run_chunk, span, busy)
        tel.count("chunking.chunks", len(chunks))
        tel.count("chunking.sources", sum(c.stop - c.start for c in chunks))
    if workers is None or workers == 1 or len(chunks) == 1:
        for columns in chunks:
            run_chunk(columns)
        return
    pool_size = min(workers, len(chunks))
    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=pool_size) as pool:
        # list() re-raises the first chunk failure, if any.
        list(pool.map(run_chunk, chunks))
    if tel.enabled:
        elapsed = time.perf_counter() - start
        tel.count("chunking.parallel_runs")
        if elapsed > 0:
            tel.gauge(
                "chunking.worker_utilization",
                min(1.0, busy.total / (pool_size * elapsed)) if busy.total else 0.0,
            )


class _BusyAccumulator:
    """Lock-guarded per-run busy-seconds total (exact under the pool)."""

    __slots__ = ("_lock", "total")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.total = 0.0

    def add(self, seconds: float) -> None:
        with self._lock:
            self.total += seconds


def _instrumented(
    tel: telemetry.Telemetry,
    run_chunk: Callable[[slice], None],
    span: str | None,
    busy: _BusyAccumulator,
) -> Callable[[slice], None]:
    """Wrap a chunk job with a per-chunk span and busy-time accounting."""

    def timed(columns: slice) -> None:
        start = time.perf_counter()
        if span is None:
            run_chunk(columns)
        else:
            with tel.span(span):
                run_chunk(columns)
        elapsed = time.perf_counter() - start
        busy.add(elapsed)
        tel.count("chunking.busy_seconds", elapsed)

    return timed
