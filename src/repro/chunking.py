"""Shared chunk planning and fan-out for the batched engines.

Both block engines — the multi-source walk engine
(:mod:`repro.markov.batch`) and the multi-source BFS engine
(:mod:`repro.graph.bfs_batch`) — process independent source columns in
contiguous chunks: ``chunk_size`` bounds the per-chunk working set at
``O(n * chunk_size)``, and ``workers`` optionally fans the chunks out
over a thread pool.  Chunks are independent and write into disjoint
pre-allocated slices, so results are deterministic regardless of
scheduling.  Threads (not processes) are used because the shared graph
or matrix would otherwise be pickled per worker.

This module holds the one chunk planner and runner both engines share,
so the two engines stay API-identical by construction.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable

from repro.errors import GraphError

__all__ = ["DEFAULT_CHUNK_SIZE", "resolve_chunks", "run_chunks"]

#: Default number of source columns processed per chunk.  Bounds the
#: dense working set (8 bytes/entry for walk blocks, 1-8 bytes for BFS
#: state) at a few MB per thousand nodes while keeping the sparse
#: structure amortized over many columns.
DEFAULT_CHUNK_SIZE = 128


def resolve_chunks(
    num_sources: int, chunk_size: int | None, workers: int | None
) -> list[slice]:
    """Split ``num_sources`` columns into contiguous chunk slices."""
    if chunk_size is None:
        size = DEFAULT_CHUNK_SIZE
        if workers is not None and workers > 1:
            # Spread the sources across the pool when the default chunk
            # would leave workers idle.
            size = min(size, -(-num_sources // workers))
    else:
        size = int(chunk_size)
    if size < 1:
        raise GraphError("chunk_size must be positive")
    return [slice(lo, min(lo + size, num_sources)) for lo in range(0, num_sources, size)]


def run_chunks(
    run_chunk: Callable[[slice], None], chunks: list[slice], workers: int | None
) -> None:
    """Execute chunk jobs inline or on a bounded thread pool."""
    if workers is not None and workers < 1:
        raise GraphError("workers must be positive")
    if workers is None or workers == 1 or len(chunks) == 1:
        for columns in chunks:
            run_chunk(columns)
        return
    with ThreadPoolExecutor(max_workers=min(workers, len(chunks))) as pool:
        # list() re-raises the first chunk failure, if any.
        list(pool.map(run_chunk, chunks))
