"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    List the bundled Table-I analogs.
``audit <edgelist> [--scale S]``
    Audit a SNAP-format edge list (or a bundled analog name) for
    Sybil-defense readiness: mixing, cores, expansion, recommendation.
    With ``--sharded`` the target is an out-of-core sharded-graph
    directory instead and every measurement streams shard by shard
    (power-iteration SLEM, Sinclair bounds, sampled fast-mixing check).
``shard build --out DIR (--target T | --stream fast|slow --nodes N)``
    Shard a dataset to disk (:mod:`repro.graph.shard`), or stream a
    multi-million-node synthetic analog straight into shards without
    ever materializing the edge list.
``shard info DIR [--verify]``
    Print a sharded graph's manifest summary and per-shard layout;
    ``--verify`` re-hashes every shard file against its digest.
``reproduce <experiment> [--scale S]``
    Regenerate one of the paper's tables/figures from the analog
    registry; ``<experiment>`` is one of table1, fig1, fig2, table2,
    fig3, fig4, fig5.
``pipeline run --target T [--cache-dir DIR]``
    Run the full measurement DAG (load -> mixing/spectral/cores/
    expansion/gatekeeper -> tables) with per-stage memoization; a
    second run against the same cache directory recomputes nothing.
``sybil compare --target T [--topology wild|powerlaw]``
    Run every registered Sybil defense (structure-only and fusion) on
    one attack scenario and print the midrank-AUC comparison table —
    the fusion-vs-structure ablation, memoized like the pipeline.
``privacy sweep --target T [--ts 0,1,2,5,10]``
    Sweep the Mittal et al. link-privacy perturbation level t over the
    standard attack scenario and print the privacy-utility frontier:
    per-t structure metrics, utility-retention curves, and per-defense
    AUC degradation, with a monotonicity verdict.
``serve --target T [--burst N]``
    Stand up the online admission service (:mod:`repro.serve`) on the
    standard attack scenario: SybilRank / GateKeeper / escape queries
    over a snapshot + overlay, compacted per policy.  Without
    ``--burst`` the JSON API serves until interrupted; with ``--burst
    N`` the closed-loop load generator fires N mixed read/write
    requests over HTTP and prints the p50/p99 latency table.

``audit``, ``report`` and ``reproduce`` accept the same ``--cache-dir``
flag, sharing warm artifacts with the pipeline.

Observability: every command accepts ``--metrics-out PATH``, which
enables the :mod:`repro.telemetry` registry for the run and writes the
canonical JSON metrics document (per-stage wall/CPU spans, store
hit/miss counters, chunk fan-out counts) to ``PATH``; ``pipeline run
--trace`` additionally prints the human-readable telemetry tables.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.analysis import (
    figure1_mixing_profiles,
    figure2_coreness_ecdfs,
    figure3_expansion_summaries,
    figure4_expansion_factors,
    figure5_core_structures,
    format_table,
    table1_dataset_summary,
    table2_gatekeeper,
)
from repro.cores import core_structure
from repro.datasets import (
    STREAM_REGIMES,
    available_datasets,
    dataset_spec,
    load_dataset,
)
from repro.errors import GraphError
from repro.expansion import envelope_expansion
from repro.graph import ShardedGraph, largest_connected_component, read_edge_list
from repro.mixing import (
    is_fast_mixing,
    power_iteration_slem,
    sinclair_bounds,
    slem,
)
from repro import telemetry
from repro.chunking import default_workers
from repro.parallel import EXECUTORS
from repro.pipeline import fusion_comparison_pipeline, paper_measurement_pipeline
from repro.store import ArtifactStore, memoize

__all__ = ["main"]


def _store_from(args: argparse.Namespace) -> ArtifactStore | None:
    cache_dir = getattr(args, "cache_dir", None)
    return ArtifactStore(cache_dir) if cache_dir else None


def _workers_from(args: argparse.Namespace) -> int | None:
    """Resolve ``--workers``, defaulting to the core count when a
    non-thread executor was requested without an explicit fan-out."""
    workers = getattr(args, "workers", None)
    if workers is None and getattr(args, "executor", None) in ("process", "auto"):
        return default_workers()
    return workers


def _cmd_datasets(_: argparse.Namespace) -> int:
    rows = []
    for name in available_datasets():
        spec = dataset_spec(name)
        rows.append(
            [
                name,
                spec.mixing_regime,
                spec.analog_nodes,
                f"{spec.paper_nodes:,}",
                spec.category,
            ]
        )
    print(
        format_table(
            ["name", "regime", "analog nodes", "paper nodes", "category"],
            rows,
            title="Bundled Table-I analogs",
        )
    )
    return 0


def _load_target(target: str, scale: float):
    if target in available_datasets():
        return load_dataset(target, scale=scale)
    path = Path(target)
    if not path.exists():
        raise SystemExit(
            f"'{target}' is neither a bundled dataset nor a readable file"
        )
    raw = read_edge_list(path)
    graph, _ = largest_connected_component(raw)
    return graph


def _audit_sharded(args: argparse.Namespace) -> int:
    """Out-of-core readiness audit over a sharded-graph directory.

    Streams every measurement shard block by shard block: SLEM via
    deflated power iteration, Sinclair bounds, and the sampled
    fast-mixing check (worst-source TVD below ``1/n`` within the
    ``4 log2 n`` budget — the same criterion as
    :func:`repro.mixing.is_fast_mixing`, measured on a geometric
    length grid).  Core/expansion structure needs the resident graph
    and is skipped at this scale.
    """
    from repro.markov.batch import batched_tvd_profile, sharded_stationary

    try:
        sharded = ShardedGraph.open(args.target)
    except GraphError as exc:
        raise SystemExit(str(exc))
    n = sharded.num_nodes
    print(
        f"sharded graph: {n} nodes, {sharded.num_edges} edges, "
        f"{sharded.num_shards} shards ({sharded.nodes_per_shard} nodes/shard)"
    )
    try:
        # 1e-8 on the Rayleigh quotient (~1e-5-accurate mu): big analogs
        # carry near-degenerate subdominant clusters the tight default
        # tolerance cannot resolve in bounded iterations
        mu = power_iteration_slem(sharded, tol=1e-8)
    except GraphError as exc:
        raise SystemExit(str(exc))
    bounds = sinclair_bounds(mu, n, epsilon=1 / n)
    budget = max(1, int(4.0 * np.log2(max(n, 2))))
    lengths = sorted(
        {1 << k for k in range(budget.bit_length()) if (1 << k) <= budget}
        | {budget}
    )
    rng = np.random.default_rng(args.seed)
    sources = np.sort(rng.choice(n, size=min(args.sources, n), replace=False))
    tvd = batched_tvd_profile(
        sharded, sharded_stationary(sharded), sources, lengths, chunk_size=8
    )
    worst = tvd.max(axis=0)
    fast = bool((worst < 1.0 / n).any())
    print(
        format_table(
            ["property", "value"],
            [
                ["SLEM mu (power iteration)", f"{mu:.4f}"],
                ["T(1/n) lower bound", f"{bounds.lower:.0f} steps"],
                ["T(1/n) upper bound", f"{bounds.upper:.0f} steps"],
                ["O(log n) budget", f"{budget} steps"],
                ["worst-source TVD at budget", f"{worst[-1]:.3e}"],
                ["fast-mixing (O(log n))", "PASS" if fast else "FAIL"],
            ],
            title="Sharded mixing audit",
        )
    )
    if fast:
        print("\nverdict: mixes fast at this scale; random-walk Sybil")
        print("defenses get their headline guarantees.")
    else:
        print("\nverdict: slow mixing — random-walk Sybil defenses will")
        print("either reject confined honest users or admit more Sybils.")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    if getattr(args, "sharded", False):
        return _audit_sharded(args)
    store = _store_from(args)
    graph = _load_target(args.target, args.scale)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges (LCC)")

    def measure_spectral():
        mu = slem(graph)
        bounds = sinclair_bounds(mu, graph.num_nodes, epsilon=1 / graph.num_nodes)
        fast = is_fast_mixing(graph, num_sources=30, seed=0)
        return {"slem": mu, "bounds": bounds, "fast": bool(fast)}

    spectral = memoize(
        store, graph, "spectral", {"seed": 0, "fast_sources": 30}, measure_spectral
    )
    mu, bounds, fast = spectral["slem"], spectral["bounds"], spectral["fast"]
    structure = memoize(store, graph, "cores", {}, lambda: core_structure(graph))
    cohesive = bool(np.all(structure.num_cores == 1))
    measurement = memoize(
        store,
        graph,
        "expansion",
        {"num_sources": 50, "seed": 0},
        lambda: envelope_expansion(
            graph, num_sources=min(50, graph.num_nodes), seed=0
        ),
    )
    small = measurement.set_sizes <= max(graph.num_nodes // 10, 1)
    alpha = (
        float(measurement.expansion_factors[small].mean()) if small.any() else 0.0
    )
    print(
        format_table(
            ["property", "value"],
            [
                ["SLEM mu", f"{mu:.4f}"],
                ["T(1/n) upper bound", f"{bounds.upper:.0f} steps"],
                ["fast-mixing (O(log n))", "PASS" if fast else "FAIL"],
                ["degeneracy k_max", structure.degeneracy],
                ["max simultaneous cores", int(structure.num_cores.max())],
                ["single cohesive core", "yes" if cohesive else "no"],
                ["mean alpha (small envelopes)", f"{alpha:.2f}"],
            ],
            title="Sybil-defense readiness audit",
        )
    )
    if fast and cohesive:
        print("\nverdict: meets the fast-mixing and expansion assumptions.")
    elif fast:
        print("\nverdict: mixes fast but cores fragment; peripheral honest")
        print("communities will see degraded acceptance.")
    else:
        print("\nverdict: slow mixing — random-walk Sybil defenses will")
        print("either reject confined honest users or admit more Sybils.")
    return 0


def _shard_build(args: argparse.Namespace) -> int:
    if (args.target is None) == (args.stream is None):
        raise SystemExit("pass exactly one of --target or --stream")
    out = Path(args.out)
    try:
        if args.stream is not None:
            if args.nodes is None:
                raise SystemExit("--stream requires --nodes")
            from repro.datasets import build_sharded_analog

            sharded = build_sharded_analog(
                out,
                args.nodes,
                regime=args.stream,
                seed=args.seed,
                num_shards=args.num_shards,
                nodes_per_shard=args.nodes_per_shard,
            )
        else:
            graph = _load_target(args.target, args.scale)
            sharded = ShardedGraph.from_graph(
                graph,
                out,
                num_shards=args.num_shards,
                nodes_per_shard=args.nodes_per_shard,
            )
    except GraphError as exc:
        raise SystemExit(str(exc))
    print(f"sharded graph written to {out}")
    print(
        f"{sharded.num_nodes} nodes, {sharded.num_edges} edges, "
        f"{sharded.num_shards} shards ({sharded.nodes_per_shard} nodes/shard)"
    )
    print(f"graph digest: {sharded.graph_digest}")
    return 0


def _shard_info(args: argparse.Namespace) -> int:
    try:
        sharded = ShardedGraph.open(args.root)
    except GraphError as exc:
        raise SystemExit(str(exc))
    print(
        f"sharded graph: {sharded.num_nodes} nodes, {sharded.num_edges} edges, "
        f"{sharded.num_shards} shards ({sharded.nodes_per_shard} nodes/shard)"
    )
    print(f"graph digest: {sharded.graph_digest}")
    bounds = sharded.bounds
    rows = []
    for index, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:])):
        shard = sharded.shard(index)
        rows.append(
            [
                index,
                f"[{lo}, {hi})",
                hi - lo,
                int(np.asarray(shard.indptr)[-1]),
                f"{shard.nbytes:,}",
            ]
        )
    print(
        format_table(
            ["shard", "nodes", "rows", "half-edges", "bytes"],
            rows,
            title="Shard layout",
        )
    )
    if args.verify:
        if sharded.verify():
            print("\nverify: all shard digests match the manifest")
        else:
            print("\nverify: DIGEST MISMATCH — shard files are corrupt")
            return 1
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    if args.shard_command == "build":
        return _shard_build(args)
    return _shard_info(args)


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis import measurement_report

    graph = _load_target(args.target, args.scale)
    text = measurement_report(graph, name=args.target, store=_store_from(args))
    if args.output:
        output = Path(args.output).resolve()
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(text, encoding="utf-8")
        print(f"report written to {output}")
    else:
        print(text)
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    scale = args.scale
    store = _store_from(args)
    if args.experiment == "table1":
        rows = table1_dataset_summary(
            list(available_datasets()), scale=scale, store=store
        )
        print(
            format_table(
                ["dataset", "nodes", "edges", "mu"],
                [[r.name, r.num_nodes, r.num_edges, f"{r.slem:.6f}"] for r in rows],
                title="Table I",
            )
        )
    elif args.experiment == "fig1":
        profiles = figure1_mixing_profiles(
            ["wiki_vote", "enron", "physics1", "epinions"],
            num_sources=50,
            scale=scale,
            store=store,
        )
        headers = ["walk len"] + list(profiles)
        lengths = next(iter(profiles.values())).walk_lengths
        rows = [
            [int(w)] + [f"{profiles[n].mean[i]:.4f}" for n in profiles]
            for i, w in enumerate(lengths)
        ]
        print(format_table(headers, rows, title="Figure 1 (mean TVD)"))
        from repro.analysis import ascii_chart

        print()
        print(
            ascii_chart(
                {n: (p.walk_lengths, p.mean) for n, p in profiles.items()},
                title="Figure 1 — TVD vs walk length",
                x_label="walk length",
                y_label="TVD",
            )
        )
    elif args.experiment == "fig2":
        ecdfs = figure2_coreness_ecdfs(
            ["wiki_vote", "physics1", "epinions"], scale=scale, store=store
        )
        for name, (values, fractions) in ecdfs.items():
            rows = [[int(v), f"{f:.3f}"] for v, f in zip(values, fractions)]
            print(format_table(["k", "P(coreness <= k)"], rows, title=name))
    elif args.experiment == "table2":
        outcomes = table2_gatekeeper(num_controllers=2, scale=scale, store=store)
        print(
            format_table(
                ["dataset", "f", "honest", "sybil/edge"],
                [
                    [
                        o.dataset,
                        f"{o.parameter:.1f}",
                        f"{o.honest_acceptance:.1%}",
                        f"{o.sybils_per_attack_edge:.2f}",
                    ]
                    for o in outcomes
                ],
                title="Table II (GateKeeper)",
            )
        )
    elif args.experiment == "fig3":
        summaries = figure3_expansion_summaries(
            ["wiki_vote", "physics1"], num_sources=50, scale=scale, store=store
        )
        for name, s in summaries.items():
            picks = np.linspace(0, s.set_sizes.size - 1, 10).astype(int)
            rows = [
                [
                    int(s.set_sizes[i]),
                    int(s.minimum[i]),
                    f"{s.mean[i]:.1f}",
                    int(s.maximum[i]),
                ]
                for i in picks
            ]
            print(
                format_table(
                    ["|S|", "min", "mean", "max"], rows, title=f"Figure 3 ({name})"
                )
            )
    elif args.experiment == "fig4":
        factors = figure4_expansion_factors(
            ["wiki_vote", "physics1"], num_sources=50, scale=scale, store=store
        )
        for name, (sizes, alphas) in factors.items():
            picks = np.linspace(0, sizes.size - 1, 10).astype(int)
            rows = [[int(sizes[i]), f"{alphas[i]:.3f}"] for i in picks]
            print(format_table(["|S|", "alpha"], rows, title=f"Figure 4 ({name})"))
    elif args.experiment == "fig5":
        structures = figure5_core_structures(
            ["wiki_vote", "physics1", "epinions"], scale=scale, store=store
        )
        for name, s in structures.items():
            rows = [
                [int(k), f"{s.node_fraction[k]:.3f}", int(s.num_cores[k])]
                for k in s.ks
            ]
            print(
                format_table(
                    ["k", "nu'_k", "#cores"], rows, title=f"Figure 5 ({name})"
                )
            )
    else:
        raise SystemExit(f"unknown experiment {args.experiment!r}")
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    store = _store_from(args)
    pipeline = paper_measurement_pipeline(
        args.target,
        scale=args.scale,
        seed=args.seed,
        num_sources=args.sources,
        store=store,
        workers=_workers_from(args),
        executor=args.executor,
    )
    if args.pipeline_command == "stages":
        rows = [
            [s, ", ".join(pipeline.stage(s).deps) or "-"]
            for s in pipeline.stage_names
        ]
        print(format_table(["stage", "depends on"], rows, title="Pipeline DAG"))
        return 0
    targets = args.stages.split(",") if args.stages else None
    result = pipeline.run(targets=targets)
    print(result.summary())
    print(store.stats.as_line() if store else "cache: disabled")
    print(f"results digest: {result.digest()}")
    tables = result.results.get("tables")
    if tables is not None:
        print(
            format_table(
                ["property", "value"],
                [
                    ["target", tables["target"]],
                    ["nodes", tables["num_nodes"]],
                    ["edges", tables["num_edges"]],
                    ["SLEM mu", f"{tables['slem']:.4f}"],
                    ["fast-mixing", "PASS" if tables["fast_mixing"] else "FAIL"],
                    ["degeneracy k_max", tables["degeneracy"]],
                    ["max simultaneous cores", tables["max_cores"]],
                    [
                        "mean alpha (small envelopes)",
                        f"{tables['mean_small_set_expansion']:.2f}",
                    ],
                    [
                        "gatekeeper cells",
                        len(tables["gatekeeper"]),
                    ],
                ],
                title="Pipeline headline results",
            )
        )
    return 0


def _cmd_sybil(args: argparse.Namespace) -> int:
    pipeline = fusion_comparison_pipeline(
        args.target,
        scale=args.scale,
        seed=args.seed,
        num_attack_edges=args.attack_edges,
        topology=args.topology,
        suspect_sample=args.suspect_sample,
        store=_store_from(args),
        workers=_workers_from(args),
        executor=args.executor,
    )
    result = pipeline.run()
    report = result.results["report"]
    attack = result.results["attack"]
    print(
        f"attack: {attack.num_honest} honest + {attack.num_sybil} sybil "
        f"({report['topology']} region), {attack.num_attack_edges} attack edges"
    )
    from repro.sybil import FUSION_DEFENSE_NAMES

    rows = [
        [
            name,
            "fusion" if name in FUSION_DEFENSE_NAMES else "structure",
            f"{auc:.4f}",
        ]
        for name, auc in sorted(
            report["auc"].items(), key=lambda kv: -kv[1]
        )
    ]
    print(
        format_table(
            ["defense", "family", "AUC"],
            rows,
            title="Fusion-vs-structure comparison (midrank ROC AUC)",
        )
    )
    verdict = (
        "both fusion defenses beat every structure-only AUC"
        if report["fusion_beats_structure"]
        else "fusion does not dominate on this scenario"
    )
    print(f"verdict: {verdict}")
    return 0


def _cmd_privacy(args: argparse.Namespace) -> int:
    from repro.privacy import privacy_frontier_pipeline

    try:
        ts = tuple(int(part) for part in args.ts.split(","))
    except ValueError:
        raise SystemExit(f"--ts must be a comma-separated int list, got {args.ts!r}")
    pipeline = privacy_frontier_pipeline(
        args.target,
        scale=args.scale,
        seed=args.seed,
        ts=ts,
        num_attack_edges=args.attack_edges,
        topology=args.topology,
        suspect_sample=args.suspect_sample,
        num_sources=args.sources,
        store=_store_from(args),
        workers=_workers_from(args),
        executor=args.executor,
    )
    result = pipeline.run()
    frontier = result.results["frontier"]
    mix_deg = frontier.mixing_degradation()
    rows = [
        [
            p.t,
            p.num_edges,
            f"{1.0 - p.edge_overlap:.3f}",
            f"{p.lcc_fraction:.3f}",
            f"{p.slem:.4f}",
            p.mixing_time if p.mixing_time is not None else "-",
            f"{mix_deg[i]:.4f}",
            f"{p.mean_defense_auc:.4f}",
        ]
        for i, p in enumerate(frontier.points)
    ]
    print(
        format_table(
            ["t", "edges", "privacy", "lcc", "slem", "T(1/n)", "mix-deg", "mean AUC"],
            rows,
            title=f"Privacy-utility frontier ({frontier.target}, "
            f"{frontier.topology} region)",
        )
    )
    retention = frontier.utility_retention()
    metrics = list(retention)
    print(
        format_table(
            ["t"] + metrics,
            [
                [p.t] + [f"{retention[m][i]:.3f}" for m in metrics]
                for i, p in enumerate(frontier.points)
            ],
            title="Utility retention (vs the first level)",
        )
    )
    degradation = frontier.auc_degradation()
    print(
        format_table(
            ["defense"] + [f"t={p.t}" for p in frontier.points],
            [
                [name] + [f"{drop:+.4f}" for drop in drops]
                for name, drops in sorted(
                    degradation.items(), key=lambda kv: -kv[1][-1]
                )
            ],
            title="Defense AUC degradation (baseline AUC - perturbed AUC)",
        )
    )
    tol = 0.02
    aucs = frontier.mean_aucs
    mixing_rises = bool(np.all(np.diff(mix_deg) >= -tol))
    auc_falls = bool(np.all(np.diff(aucs) <= tol))
    if mixing_rises and auc_falls:
        print(
            "verdict: utility degrades monotonically with t "
            "(mixing degradation rises, mean defense AUC falls)"
        )
    else:
        print(
            "verdict: non-monotone frontier "
            f"(mixing degradation rises: {mixing_rises}, "
            f"mean AUC falls: {auc_falls})"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import (
        AdmissionService,
        CompactionPolicy,
        HttpClient,
        LoadConfig,
        ServiceConfig,
        create_server,
        run_load,
    )
    from repro.sybil import standard_attack

    honest = _load_target(args.target, args.scale)
    num_attack_edges = args.attack_edges or max(5, honest.num_nodes // 20)
    attack = standard_attack(honest, num_attack_edges, seed=args.seed)
    policy = CompactionPolicy(max_overlay_edges=args.compact_max_overlay)
    service = AdmissionService(
        attack.graph,
        num_honest=attack.num_honest,
        config=ServiceConfig(seed=args.seed),
        policy=policy,
        store=_store_from(args),
    )
    server = create_server(service, host=args.host, port=args.port)
    print(
        f"serving {args.target} ({attack.num_honest} honest + "
        f"{attack.num_sybil} sybil nodes, {attack.num_attack_edges} attack "
        f"edges) at {server.url}"
    )
    if args.burst:
        server.serve_in_background()
        report = run_load(
            HttpClient(server.url),
            LoadConfig(
                num_clients=args.clients,
                num_requests=args.burst,
                write_fraction=args.write_fraction,
                seed=args.seed,
            ),
            target=args.target,
            service=service,
        )
        server.shutdown()
        print(report.format_table())
        final = service.stats()
        print(
            f"final state: {final.num_nodes} nodes, {final.num_edges} edges, "
            f"snapshot v{final.snapshot_version}, "
            f"{final.compactions} compactions, "
            f"{final.cache_hits}/{final.cache_hits + final.cache_misses} "
            "warm-cache hits"
        )
        return 1 if report.errors else 0
    print("press Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
        server.shutdown()
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction toolkit for 'Understanding Social Networks "
            "Properties for Trustworthy Computing' (ICDCS-W 2011)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    metrics = argparse.ArgumentParser(add_help=False)
    metrics.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="record telemetry and write the canonical JSON metrics "
        "document to PATH",
    )
    sub.add_parser(
        "datasets", help="list bundled Table-I analogs", parents=[metrics]
    )
    cache_help = "artifact-cache directory for warm reruns"
    audit = sub.add_parser(
        "audit", help="audit a graph for defense readiness", parents=[metrics]
    )
    audit.add_argument(
        "target",
        help="edge-list path or bundled dataset name "
        "(with --sharded: a sharded-graph directory)",
    )
    audit.add_argument("--scale", type=float, default=0.25)
    audit.add_argument("--cache-dir", help=cache_help)
    audit.add_argument(
        "--sharded",
        action="store_true",
        help="audit TARGET as an out-of-core sharded-graph directory, "
        "streaming every measurement shard by shard",
    )
    audit.add_argument(
        "--seed", type=int, default=0, help="sharded audit: source-sampling seed"
    )
    audit.add_argument(
        "--sources",
        type=int,
        default=30,
        help="sharded audit: number of sampled TVD sources",
    )
    shard = sub.add_parser(
        "shard", help="build and inspect out-of-core sharded graphs"
    )
    shard_sub = shard.add_subparsers(dest="shard_command", required=True)
    build = shard_sub.add_parser(
        "build",
        help="shard a dataset to disk, or stream a huge synthetic analog",
        parents=[metrics],
    )
    build.add_argument("--out", required=True, help="destination directory")
    build.add_argument(
        "--target", help="edge-list path or bundled dataset name to shard"
    )
    build.add_argument("--scale", type=float, default=0.25)
    build.add_argument(
        "--stream",
        choices=sorted(STREAM_REGIMES),
        help="instead of --target, stream a synthetic analog of this "
        "mixing regime straight to shards (needs --nodes)",
    )
    build.add_argument(
        "--nodes", type=int, help="streamed analog size (with --stream)"
    )
    build.add_argument("--seed", type=int, default=0)
    build.add_argument("--num-shards", type=int)
    build.add_argument("--nodes-per-shard", type=int)
    info = shard_sub.add_parser(
        "info",
        help="print a sharded graph's manifest summary",
        parents=[metrics],
    )
    info.add_argument("root", help="sharded-graph directory")
    info.add_argument(
        "--verify",
        action="store_true",
        help="re-hash every shard file against the manifest digests",
    )
    repro = sub.add_parser(
        "reproduce", help="regenerate a paper experiment", parents=[metrics]
    )
    repro.add_argument(
        "experiment",
        choices=["table1", "fig1", "fig2", "table2", "fig3", "fig4", "fig5"],
    )
    repro.add_argument("--scale", type=float, default=0.25)
    repro.add_argument("--cache-dir", help=cache_help)
    report = sub.add_parser(
        "report",
        help="full markdown measurement report for a graph",
        parents=[metrics],
    )
    report.add_argument("target", help="edge-list path or bundled dataset name")
    report.add_argument("--scale", type=float, default=0.25)
    report.add_argument("--output", help="write the report to this file")
    report.add_argument("--cache-dir", help=cache_help)
    pipeline = sub.add_parser(
        "pipeline", help="run the measurement DAG with per-stage memoization"
    )
    pipe_sub = pipeline.add_subparsers(dest="pipeline_command", required=True)
    for verb, help_text in [
        ("run", "execute the DAG (warm stages are served from the cache)"),
        ("stages", "list the DAG stages and their dependencies"),
    ]:
        cmd = pipe_sub.add_parser(verb, help=help_text, parents=[metrics])
        cmd.add_argument(
            "--target",
            required=True,
            help="edge-list path or bundled dataset name",
        )
        if verb == "run":
            cmd.add_argument(
                "--trace",
                action="store_true",
                help="record telemetry and print the span/counter tables",
            )
        cmd.add_argument("--scale", type=float, default=0.25)
        cmd.add_argument("--seed", type=int, default=0)
        cmd.add_argument("--sources", type=int, default=50)
        cmd.add_argument("--workers", type=int)
        cmd.add_argument(
            "--executor",
            choices=EXECUTORS,
            help="batch-engine backend: threads share the GIL, processes "
            "fan chunks out over a shared-memory graph plane "
            "(default workers: one per core)",
        )
        cmd.add_argument("--cache-dir", help=cache_help)
        cmd.add_argument(
            "--stages",
            help="comma-separated target stages (their dependencies run too)",
        )
    sybil = sub.add_parser(
        "sybil",
        help="compare Sybil defenses (structure-only vs fusion) on one attack",
    )
    sybil_sub = sybil.add_subparsers(dest="sybil_command", required=True)
    compare = sybil_sub.add_parser(
        "compare",
        help="run all registered defenses and print the midrank-AUC table",
        parents=[metrics],
    )
    compare.add_argument(
        "--target", required=True, help="edge-list path or bundled dataset name"
    )
    compare.add_argument(
        "--topology",
        choices=["wild", "powerlaw"],
        default="wild",
        help="Sybil-region shape (wild = sparse tree-like, per arXiv 1106.5321)",
    )
    compare.add_argument(
        "--attack-edges",
        type=int,
        help="number of attack edges g (default: nodes/20, at least 5)",
    )
    compare.add_argument("--scale", type=float, default=0.25)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--suspect-sample", type=int, default=120)
    compare.add_argument("--workers", type=int)
    compare.add_argument(
        "--executor",
        choices=EXECUTORS,
        help="batch-engine backend (thread, process, or auto)",
    )
    compare.add_argument("--cache-dir", help=cache_help)
    privacy = sub.add_parser(
        "privacy",
        help="link-privacy perturbation vs defense-utility frontier",
    )
    privacy_sub = privacy.add_subparsers(dest="privacy_command", required=True)
    sweep = privacy_sub.add_parser(
        "sweep",
        help="sweep the perturbation level t and print the frontier tables",
        parents=[metrics],
    )
    sweep.add_argument(
        "--target", required=True, help="edge-list path or bundled dataset name"
    )
    sweep.add_argument(
        "--ts",
        default="0,1,2,5,10",
        help="comma-separated perturbation levels, strictly increasing "
        "(start at 0: the first level is the retention baseline)",
    )
    sweep.add_argument(
        "--topology",
        choices=["wild", "powerlaw"],
        default="powerlaw",
        help="Sybil-region shape of the attack scenario",
    )
    sweep.add_argument(
        "--attack-edges",
        type=int,
        help="number of attack edges g (default: nodes/20, at least 5)",
    )
    sweep.add_argument("--scale", type=float, default=0.25)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--sources", type=int, default=50)
    sweep.add_argument("--suspect-sample", type=int, default=120)
    sweep.add_argument("--workers", type=int)
    sweep.add_argument(
        "--executor",
        choices=EXECUTORS,
        help="batch-engine backend (thread, process, or auto)",
    )
    sweep.add_argument("--cache-dir", help=cache_help)
    serve = sub.add_parser(
        "serve",
        help="online admission service over a snapshot + overlay",
        parents=[metrics],
    )
    serve.add_argument(
        "--target", required=True, help="edge-list path or bundled dataset name"
    )
    serve.add_argument("--scale", type=float, default=0.25)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="listen port (0 picks a free one)"
    )
    serve.add_argument(
        "--attack-edges",
        type=int,
        help="number of attack edges g (default: nodes/20, at least 5)",
    )
    serve.add_argument(
        "--compact-max-overlay",
        type=int,
        default=1024,
        help="compaction policy: fold the overlay at this many delta edges",
    )
    serve.add_argument(
        "--burst",
        type=int,
        help="run a closed-loop HTTP load burst of this many requests "
        "and exit (default: serve until interrupted)",
    )
    serve.add_argument(
        "--clients", type=int, default=4, help="load-burst worker threads"
    )
    serve.add_argument(
        "--write-fraction",
        type=float,
        default=0.2,
        help="load-burst fraction of write requests",
    )
    serve.add_argument("--cache-dir", help=cache_help)
    args = parser.parse_args(argv)
    handlers = {
        "datasets": _cmd_datasets,
        "audit": _cmd_audit,
        "shard": _cmd_shard,
        "reproduce": _cmd_reproduce,
        "report": _cmd_report,
        "pipeline": _cmd_pipeline,
        "sybil": _cmd_sybil,
        "privacy": _cmd_privacy,
        "serve": _cmd_serve,
    }
    metrics_out = getattr(args, "metrics_out", None)
    trace = getattr(args, "trace", False)
    if not metrics_out and not trace:
        return handlers[args.command](args)
    with telemetry.activate() as tel:
        code = handlers[args.command](args)
        if trace:
            from repro.analysis import telemetry_summary

            print()
            print(telemetry_summary(tel))
        if metrics_out:
            written = tel.write_json(metrics_out)
            print(f"metrics written to {written}")
    return code


if __name__ == "__main__":
    sys.exit(main())
