"""Community detection used by the mixing/ranking analyses."""

from repro.community.detection import (
    greedy_modularity,
    label_propagation,
    modularity,
    normalized_mutual_information,
    partition_map,
)

__all__ = [
    "label_propagation",
    "greedy_modularity",
    "modularity",
    "partition_map",
    "normalized_mutual_information",
]
