"""Community detection: label propagation and greedy modularity.

Viswanath et al. (cited in Section II) showed the random-walk Sybil
defenses are equivalent to detecting the local community around the
trusted node, and the paper's own explanation of slow mixing is
tight-knit community structure.  These detectors let the experiments
quantify that structure (modularity of the found partition) and replay
the Viswanath-style comparison.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.core import Graph

__all__ = [
    "label_propagation",
    "modularity",
    "greedy_modularity",
    "partition_map",
    "normalized_mutual_information",
]


def partition_map(labels: np.ndarray) -> dict[int, np.ndarray]:
    """Group node ids by community label."""
    labels = np.asarray(labels, dtype=np.int64)
    return {
        int(label): np.flatnonzero(labels == label).astype(np.int64)
        for label in np.unique(labels)
    }


def label_propagation(
    graph: Graph, max_rounds: int = 100, seed: int = 0
) -> np.ndarray:
    """Return community labels by asynchronous label propagation.

    Each node repeatedly adopts its neighborhood's majority label (ties
    broken uniformly at random) until no label changes or ``max_rounds``
    is hit.  Labels are renumbered contiguously before returning.
    """
    if graph.num_nodes == 0:
        raise GraphError("label propagation needs a non-empty graph")
    rng = np.random.default_rng(seed)
    labels = np.arange(graph.num_nodes, dtype=np.int64)
    for _ in range(max_rounds):
        changed = False
        for node in rng.permutation(graph.num_nodes):
            nbrs = graph.neighbors(int(node))
            if nbrs.size == 0:
                continue
            neighbor_labels = labels[nbrs]
            values, counts = np.unique(neighbor_labels, return_counts=True)
            best = values[counts == counts.max()]
            choice = int(best[rng.integers(best.size)])
            if choice != labels[node]:
                labels[node] = choice
                changed = True
        if not changed:
            break
    _, renumbered = np.unique(labels, return_inverse=True)
    return renumbered.astype(np.int64)


def modularity(graph: Graph, labels: np.ndarray) -> float:
    """Return Newman modularity Q of the labeled partition."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.size != graph.num_nodes:
        raise GraphError("labels must cover every node")
    m = graph.num_edges
    if m == 0:
        return 0.0
    degrees = graph.degrees.astype(float)
    internal = 0.0
    for u, v in graph.edge_array():
        if labels[u] == labels[v]:
            internal += 1.0
    community_degree: dict[int, float] = {}
    for node, label in enumerate(labels):
        community_degree[int(label)] = (
            community_degree.get(int(label), 0.0) + degrees[node]
        )
    expected = sum(d * d for d in community_degree.values()) / (4.0 * m * m)
    return internal / m - expected


def _local_moving(
    adjacency: list[dict[int, float]],
    node_weight: np.ndarray,
    self_loops: np.ndarray,
    two_m: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """One Louvain local-moving phase on a weighted graph."""
    n = len(adjacency)
    labels = np.arange(n, dtype=np.int64)
    community_weight = node_weight.astype(float).copy()
    improved = True
    while improved:
        improved = False
        for node in rng.permutation(n):
            node = int(node)
            if not adjacency[node]:
                continue
            current = int(labels[node])
            link_weight: dict[int, float] = {}
            for nbr, w in adjacency[node].items():
                label = int(labels[nbr])
                link_weight[label] = link_weight.get(label, 0.0) + w
            community_weight[current] -= node_weight[node]
            best_label = current
            best_gain = link_weight.get(current, 0.0) - (
                community_weight[current] * node_weight[node] / two_m
            )
            for label, weight in link_weight.items():
                if label == current:
                    continue
                gain = weight - community_weight[label] * node_weight[node] / two_m
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_label = label
            community_weight[best_label] += node_weight[node]
            if best_label != current:
                labels[node] = best_label
                improved = True
    return labels


def greedy_modularity(graph: Graph, seed: int = 0, max_levels: int = 10) -> np.ndarray:
    """Return community labels from multi-level Louvain optimization.

    Runs local moving (each node greedily joins the neighbor community
    with the best modularity gain), then coarsens communities into
    super-nodes and repeats until modularity stops improving.
    """
    if graph.num_nodes == 0:
        raise GraphError("greedy modularity needs a non-empty graph")
    m = graph.num_edges
    if m == 0:
        return np.zeros(graph.num_nodes, dtype=np.int64)
    rng = np.random.default_rng(seed)
    two_m = 2.0 * m
    # weighted working graph, initially the input
    adjacency: list[dict[int, float]] = [
        {int(v): 1.0 for v in graph.neighbors(u)} for u in range(graph.num_nodes)
    ]
    node_weight = graph.degrees.astype(float)
    self_loops = np.zeros(graph.num_nodes)
    assignment = np.arange(graph.num_nodes, dtype=np.int64)  # node -> community
    for _ in range(max_levels):
        labels = _local_moving(adjacency, node_weight, self_loops, two_m, rng)
        unique, compact = np.unique(labels, return_inverse=True)
        if unique.size == len(adjacency):
            break  # no merges: converged
        assignment = compact[assignment]
        # coarsen: communities become super-nodes with aggregated weights
        new_n = unique.size
        new_adj: list[dict[int, float]] = [{} for _ in range(new_n)]
        new_self = np.zeros(new_n)
        new_weight = np.zeros(new_n)
        for node, nbrs in enumerate(adjacency):
            a = int(compact[node])
            new_weight[a] += node_weight[node]
            new_self[a] += self_loops[node]
            for nbr, w in nbrs.items():
                b = int(compact[nbr])
                if a == b:
                    new_self[a] += w / 2.0
                else:
                    new_adj[a][b] = new_adj[a].get(b, 0.0) + w
        adjacency, node_weight, self_loops = new_adj, new_weight, new_self
    _, renumbered = np.unique(assignment, return_inverse=True)
    return renumbered.astype(np.int64)


def normalized_mutual_information(first: np.ndarray, second: np.ndarray) -> float:
    """Return NMI between two labelings (1 = identical partitions)."""
    a = np.asarray(first, dtype=np.int64)
    b = np.asarray(second, dtype=np.int64)
    if a.size != b.size or a.size == 0:
        raise GraphError("labelings must be non-empty and equal length")
    n = a.size
    _, a_idx = np.unique(a, return_inverse=True)
    _, b_idx = np.unique(b, return_inverse=True)
    contingency = np.zeros((a_idx.max() + 1, b_idx.max() + 1))
    np.add.at(contingency, (a_idx, b_idx), 1.0)
    pa = contingency.sum(axis=1) / n
    pb = contingency.sum(axis=0) / n
    pab = contingency / n
    mutual = 0.0
    for i in range(pab.shape[0]):
        for j in range(pab.shape[1]):
            if pab[i, j] > 0:
                mutual += pab[i, j] * np.log(pab[i, j] / (pa[i] * pb[j]))
    entropy_a = -np.sum(pa[pa > 0] * np.log(pa[pa > 0]))
    entropy_b = -np.sum(pb[pb > 0] * np.log(pb[pb > 0]))
    if entropy_a == 0 or entropy_b == 0:
        return 1.0 if np.array_equal(a_idx, b_idx) else 0.0
    return float(mutual / np.sqrt(entropy_a * entropy_b))
