"""Batched multi-source walk evolution (the hot path of Figure 1).

The sampling measurements evolve *many* delta distributions through the
same transition matrix.  Doing that one sparse matvec at a time wastes
the matrix traversal: scipy's CSC/CSR kernels amortize the sparse
structure across the columns of a dense right-hand side, so evolving an
``(n, s)`` block of source distributions in one sparse x dense product
is far faster than ``s`` separate matvecs while producing bit-identical
columns (both code paths reduce each output entry in the same order).

This module is the engine shared by :mod:`repro.mixing.sampling`,
:mod:`repro.mixing.trust` and the ranking-style Sybil defenses:

* :func:`delta_block` builds the ``(n, s)`` block of source deltas.
* :func:`evolve_block` advances a block ``steps`` walk steps.
* :func:`batched_tvd_profile` records TVD-to-stationary at a grid of
  walk lengths for every source — the whole Figure-1 inner loop in a
  handful of sparse x dense products.

Memory is bounded by column chunking (``chunk_size`` keeps the working
set at ``O(n * chunk_size)``), and chunks can optionally fan out over a
thread pool (``workers``) or — with ``executor="process"`` — over the
persistent process pool of :mod:`repro.parallel`: the matrix is
published once into the shared-memory plane (never pickled per
worker), chunk TVD rows land in a shared output buffer, and the same
module-level kernel runs on both backends, so every executor x
chunk_size x workers combination stays bit-identical to the others and
to the sequential oracle.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro import parallel, telemetry
from repro.chunking import DEFAULT_CHUNK_SIZE, resolve_chunks, run_chunks
from repro.errors import GraphError
from repro.graph.shard import ShardedGraph

__all__ = [
    "delta_block",
    "evolve_block",
    "batched_tvd_profile",
    "sharded_stationary",
    "validate_walk_lengths",
    "DEFAULT_CHUNK_SIZE",
]


def validate_walk_lengths(walk_lengths: np.ndarray | Sequence[int]) -> np.ndarray:
    """Validate and return walk lengths as a strictly increasing int64 array.

    Walk length ``0`` is explicitly allowed and means "the source delta
    itself" (no steps taken); negative lengths and non-increasing grids
    are rejected with :class:`~repro.errors.GraphError`.
    """
    lengths = np.asarray(list(walk_lengths), dtype=np.int64)
    if lengths.size == 0:
        raise GraphError("walk_lengths must be non-empty")
    if lengths.min() < 0:
        raise GraphError(
            "walk_lengths must be non-negative (t=0 measures the delta itself)"
        )
    if np.any(np.diff(lengths) <= 0):
        raise GraphError("walk_lengths must be strictly increasing")
    return lengths


def delta_block(num_nodes: int, sources: np.ndarray | Sequence[int]) -> np.ndarray:
    """Return the ``(num_nodes, len(sources))`` block of delta distributions.

    Column ``j`` is the distribution concentrated at ``sources[j]``.
    Duplicate sources are allowed (each gets its own column).
    """
    chosen = np.asarray(list(sources), dtype=np.int64)
    if chosen.size == 0:
        raise GraphError("sources must be non-empty")
    if chosen.min() < 0 or chosen.max() >= num_nodes:
        raise GraphError(f"sources must be node ids in [0, {num_nodes})")
    block = np.zeros((num_nodes, chosen.size))
    block[chosen, np.arange(chosen.size)] = 1.0
    return block


def evolve_block(
    matrix: sp.spmatrix | ShardedGraph, block: np.ndarray, steps: int = 1
) -> np.ndarray:
    """Advance every column of ``block`` by ``steps`` walk steps.

    ``matrix`` is the row-stochastic transition matrix P; each step maps
    the block ``D`` to ``P^T D`` (column ``j`` evolves exactly like
    ``TransitionOperator.evolve`` on that column alone).

    A :class:`~repro.graph.shard.ShardedGraph` may be passed instead of
    a resident matrix: the (non-lazy) transition product then streams
    shard blocks through the same CSC kernel scipy dispatches to, and
    the result is bit-identical to evolving through
    ``transition_matrix(sharded.to_graph())``.
    """
    if steps < 0:
        raise GraphError("steps must be non-negative")
    if isinstance(matrix, ShardedGraph):
        stepper = _ShardedEvolver(matrix)
        out = np.ascontiguousarray(block, dtype=float)
        if out.ndim != 2 or out.shape[0] != matrix.num_nodes:
            raise GraphError(
                f"block must have shape ({matrix.num_nodes}, s), got {out.shape}"
            )
        if out is block:
            out = out.copy()
        return stepper.evolve(out, steps)
    n = matrix.shape[0]
    out = np.asarray(block, dtype=float)
    if out.ndim != 2 or out.shape[0] != n:
        raise GraphError(f"block must have shape ({n}, s), got {out.shape}")
    transposed = matrix.T
    for _ in range(steps):
        out = transposed @ out
    return out


def sharded_stationary(sharded: ShardedGraph) -> np.ndarray:
    """Return ``pi[v] = deg(v) / 2m`` streamed from shard degrees.

    The sharded twin of
    :func:`repro.markov.transition.stationary_distribution`, computed
    without materializing the graph.
    """
    degrees = sharded.degrees.astype(float)
    total = degrees.sum()
    if total == 0:
        raise GraphError("stationary distribution undefined for an edgeless graph")
    return degrees / total


class _ShardedEvolver:
    """Streams ``P^T @ block`` shard-by-shard, bit-identical to scipy.

    Shards are processed in ascending node order and accumulate into
    one shared output through
    :meth:`~repro.graph.shard.Shard.scatter_transition` — the same
    per-entry reduction order as the monolithic csc product.  Isolated
    nodes (absorbing self-loops in the merged in-RAM P) are patched
    from the input block, which is exact because nothing else ever
    contributes to their rows.
    """

    def __init__(self, sharded: ShardedGraph) -> None:
        self._sharded = sharded
        degrees = sharded.degrees.astype(float)
        self._inv_deg = np.zeros(degrees.size)
        nonzero = degrees > 0
        self._inv_deg[nonzero] = 1.0 / degrees[nonzero]
        self._isolated = np.flatnonzero(~nonzero)

    def evolve(self, block: np.ndarray, steps: int) -> np.ndarray:
        """Advance a C-contiguous float64 ``(n, s)`` block in place-ish."""
        cur = block
        for _ in range(steps):
            nxt = np.zeros_like(cur)
            for shard in self._sharded.iter_shards():
                shard.scatter_transition(cur, self._inv_deg, nxt)
            if self._isolated.size:
                nxt[self._isolated] = cur[self._isolated]
            cur = nxt
        return cur


def _tvd_rows(block: np.ndarray, stationary: np.ndarray) -> np.ndarray:
    """Per-column TVD to ``stationary``; bit-identical to the 1-D path.

    ``np.subtract(..., order="C")`` forces a C-contiguous ``(s, n)``
    difference so the ``axis=1`` reduction uses the same pairwise
    summation as ``total_variation_distance`` on a single contiguous
    vector — keeping batched and sequential strategies byte-identical.
    """
    diff = np.subtract(block.T, stationary, order="C")
    return 0.5 * np.abs(diff).sum(axis=1)


def _evolve_tvd(
    block: np.ndarray,
    transposed: sp.spmatrix | None,
    evolver: "_ShardedEvolver | None",
    stationary: np.ndarray,
    lengths: np.ndarray,
) -> np.ndarray:
    """Evolve one column block through the length grid; return TVD rows.

    The single chunk kernel both backends run: the thread closure hands
    it a view of the parent's delta block, the process task a freshly
    built chunk delta block — identical values either way, and scipy
    copies a non-contiguous right-hand side before its product loop, so
    the two entries are byte-identical.
    """
    rows = np.empty((block.shape[1], lengths.size))
    step = 0
    for col, target in enumerate(lengths):
        if evolver is not None:
            block = evolver.evolve(block, int(target) - step)
        else:
            for _ in range(int(target) - step):
                block = transposed @ block
        step = int(target)
        rows[:, col] = _tvd_rows(block, stationary)
    return rows


def _tvd_process_chunk(payload: dict, columns: slice) -> None:
    """Process-backend chunk task: write TVD rows into the shared output."""
    matrix = parallel.resolve(payload["matrix"])
    stationary = parallel.resolve(payload["stationary"])
    out = parallel.resolve(payload["out"])
    lengths = payload["lengths"]
    tel = telemetry.current()
    with tel.span("markov.batch.evolve_chunk"):
        sharded = isinstance(matrix, ShardedGraph)
        evolver = _ShardedEvolver(matrix) if sharded else None
        n = matrix.num_nodes if sharded else matrix.shape[0]
        block = delta_block(n, payload["sources"][columns])
        out[columns] = _evolve_tvd(
            block, None if sharded else matrix.T, evolver, stationary, lengths
        )
    tel.count(
        "markov.batch.steps", int(lengths[-1]) * (columns.stop - columns.start)
    )


def batched_tvd_profile(
    matrix: sp.spmatrix | ShardedGraph,
    stationary: np.ndarray,
    sources: np.ndarray | Sequence[int],
    walk_lengths: np.ndarray | Sequence[int],
    chunk_size: int | None = None,
    workers: int | None = None,
    executor: str | None = None,
) -> np.ndarray:
    """Return the ``(len(sources), len(walk_lengths))`` TVD matrix.

    Entry ``[j, t]`` is the total variation distance between source
    ``sources[j]``'s ``walk_lengths[t]``-step distribution and
    ``stationary``.  Sources are evolved as dense column blocks of at
    most ``chunk_size`` columns (default ``DEFAULT_CHUNK_SIZE``); with
    ``workers`` the independent chunks run on a thread pool, or — with
    ``executor="process"`` (or an ambient
    :func:`repro.parallel.execution` scope) — on the shared-memory
    process backend, bit-identical to the thread path.

    ``matrix`` may be a :class:`~repro.graph.shard.ShardedGraph`
    instead of a resident transition matrix: each chunk then streams
    shard blocks per step (non-lazy walk), producing entries
    bit-identical to the in-RAM engine on the materialized graph.

    An empty source array is legal and returns the empty
    ``(0, len(walk_lengths))`` matrix (walk lengths are still
    validated) — the engine-level face of the chunk planner's
    empty-plan semantics.
    """
    lengths = validate_walk_lengths(walk_lengths)
    chosen = np.asarray(list(sources), dtype=np.int64)
    if chosen.size == 0:
        return np.empty((0, lengths.size))
    kind, workers = parallel.resolve_execution(executor, workers)
    tel = telemetry.current()
    with tel.span("markov.batch.tvd_profile"):
        tel.count("markov.batch.sources", int(chosen.size))
        chunks = resolve_chunks(chosen.size, chunk_size, workers)
        if parallel.use_processes(kind, workers, len(chunks)):
            return _tvd_profile_processes(
                matrix, stationary, chosen, lengths, chunks, workers
            )
        sharded = matrix if isinstance(matrix, ShardedGraph) else None
        evolver = _ShardedEvolver(sharded) if sharded is not None else None
        n = sharded.num_nodes if sharded is not None else matrix.shape[0]
        full_block = delta_block(n, chosen)
        tvd = np.empty((chosen.size, lengths.size))
        transposed = matrix.T if sharded is None else None

        def run_chunk(columns: slice) -> None:
            with tel.span("markov.batch.evolve_chunk"):
                block = full_block[:, columns]
                if evolver is not None:
                    block = np.ascontiguousarray(block)
                tvd[columns] = _evolve_tvd(
                    block, transposed, evolver, stationary, lengths
                )
            tel.count(
                "markov.batch.steps",
                int(lengths[-1]) * (columns.stop - columns.start),
            )

        run_chunks(run_chunk, chunks, workers)
        return tvd


def _tvd_profile_processes(
    matrix: sp.spmatrix | ShardedGraph,
    stationary: np.ndarray,
    chosen: np.ndarray,
    lengths: np.ndarray,
    chunks: list[slice],
    workers: int,
) -> np.ndarray:
    """Dispatch the TVD chunk grid to the shared-memory process pool."""
    ref = parallel.publish(matrix)
    stationary_spec = parallel.share_array(np.asarray(stationary, dtype=float))
    out_spec, out_view = parallel.create_output((chosen.size, lengths.size), float)
    try:
        parallel.run_process_chunks(
            _tvd_process_chunk,
            {
                "matrix": ref,
                "stationary": stationary_spec,
                "out": out_spec,
                "sources": chosen,
                "lengths": lengths,
            },
            chunks,
            workers,
        )
        return np.array(out_view)
    finally:
        parallel.release([stationary_spec, out_spec])
