"""Random-walk transition operator over a graph.

Implements the stochastic matrix P of Eq. (1) in the paper:
``p_ij = 1/deg(v_i)`` when ``v_j`` is adjacent to ``v_i`` and 0 otherwise,
with its stationary distribution ``pi = [deg(v_i) / 2m]`` and fast
repeated application via scipy sparse matvecs.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphError
from repro.graph.core import Graph

__all__ = [
    "TransitionOperator",
    "stationary_distribution",
    "transition_matrix",
]


def transition_matrix(graph: Graph, lazy: bool = False) -> sp.csr_matrix:
    """Return the n x n transition matrix P as a scipy CSR matrix.

    With ``lazy=True`` returns ``(I + P) / 2``, the lazy walk used to
    guarantee aperiodicity on bipartite structures.  Nodes of degree zero
    get a self loop (they are absorbing), so P stays row stochastic.
    """
    n = graph.num_nodes
    if n == 0:
        raise GraphError("transition matrix of an empty graph is undefined")
    degrees = graph.degrees.astype(float)
    isolated = np.flatnonzero(degrees == 0)
    inv_deg = np.zeros(n, dtype=float)
    nonzero = degrees > 0
    inv_deg[nonzero] = 1.0 / degrees[nonzero]
    data = np.repeat(inv_deg, graph.degrees)
    matrix = sp.csr_matrix(
        (data, graph.indices.copy(), graph.indptr.copy()), shape=(n, n)
    )
    if isolated.size:
        matrix = matrix + sp.csr_matrix(
            (np.ones(isolated.size), (isolated, isolated)), shape=(n, n)
        )
    if lazy:
        matrix = 0.5 * (sp.identity(n, format="csr") + matrix)
    return matrix.tocsr()


def stationary_distribution(graph: Graph) -> np.ndarray:
    """Return ``pi`` with ``pi[v] = deg(v) / 2m`` (Section III-C).

    For graphs with isolated nodes the distribution is normalized over
    positive-degree nodes only, matching the chain restricted to the
    non-absorbing part.
    """
    degrees = graph.degrees.astype(float)
    total = degrees.sum()
    if total == 0:
        raise GraphError("stationary distribution undefined for an edgeless graph")
    return degrees / total


class TransitionOperator:
    """Cached transition operator supporting repeated t-step evolution.

    Builds the sparse matrix once and exposes ``evolve`` (one step) and
    ``distribution_after`` (t steps) plus the stationary distribution.
    Used heavily by the sampled mixing-time measurement, which evolves a
    delta distribution from each sampled source.
    """

    def __init__(self, graph: Graph, lazy: bool = False) -> None:
        self._graph = graph
        self._lazy = lazy
        self._matrix = transition_matrix(graph, lazy=lazy)
        self._stationary = stationary_distribution(graph)

    @property
    def graph(self) -> Graph:
        """The underlying graph."""
        return self._graph

    @property
    def lazy(self) -> bool:
        """Whether this is the lazy (I + P)/2 chain."""
        return self._lazy

    @property
    def matrix(self) -> sp.csr_matrix:
        """The sparse row-stochastic matrix P."""
        return self._matrix

    @property
    def stationary(self) -> np.ndarray:
        """The stationary distribution pi."""
        return self._stationary

    def delta(self, node: int) -> np.ndarray:
        """Return the distribution concentrated at ``node``."""
        self._graph._check_node(node)
        dist = np.zeros(self._graph.num_nodes)
        dist[node] = 1.0
        return dist

    def evolve(self, distribution: np.ndarray) -> np.ndarray:
        """Return ``distribution @ P`` (one walk step)."""
        dist = np.asarray(distribution, dtype=float)
        if dist.shape != (self._graph.num_nodes,):
            raise GraphError(
                f"distribution must have shape ({self._graph.num_nodes},)"
            )
        return self._matrix.T @ dist

    def distribution_after(self, start: np.ndarray | int, steps: int) -> np.ndarray:
        """Return the walk distribution after ``steps`` steps.

        ``start`` may be a node id (delta start) or a full distribution.
        """
        if steps < 0:
            raise GraphError("steps must be non-negative")
        dist = self.delta(start) if isinstance(start, (int, np.integer)) else np.asarray(
            start, dtype=float
        )
        for _ in range(steps):
            dist = self.evolve(dist)
        return dist

    def trajectory(self, start: np.ndarray | int, steps: int) -> np.ndarray:
        """Return a ``(steps + 1, n)`` array of distributions along the walk."""
        dist = self.delta(start) if isinstance(start, (int, np.integer)) else np.asarray(
            start, dtype=float
        )
        out = np.empty((steps + 1, self._graph.num_nodes))
        out[0] = dist
        for t in range(1, steps + 1):
            dist = self.evolve(dist)
            out[t] = dist
        return out
