"""Random-walk transition operator over a graph.

Implements the stochastic matrix P of Eq. (1) in the paper:
``p_ij = 1/deg(v_i)`` when ``v_j`` is adjacent to ``v_i`` and 0 otherwise,
with its stationary distribution ``pi = [deg(v_i) / 2m]`` and fast
repeated application via scipy sparse matvecs.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphError
from repro.graph.core import Graph
from repro.markov.batch import batched_tvd_profile, delta_block, evolve_block

__all__ = [
    "TransitionOperator",
    "stationary_distribution",
    "transition_matrix",
    "get_operator",
    "clear_operator_cache",
]


def transition_matrix(graph: Graph, lazy: bool = False) -> sp.csr_matrix:
    """Return the n x n transition matrix P as a scipy CSR matrix.

    With ``lazy=True`` returns ``(I + P) / 2``, the lazy walk used to
    guarantee aperiodicity on bipartite structures.  Nodes of degree zero
    get a self loop (they are absorbing), so P stays row stochastic.
    """
    n = graph.num_nodes
    if n == 0:
        raise GraphError("transition matrix of an empty graph is undefined")
    degrees = graph.degrees.astype(float)
    isolated = np.flatnonzero(degrees == 0)
    inv_deg = np.zeros(n, dtype=float)
    nonzero = degrees > 0
    inv_deg[nonzero] = 1.0 / degrees[nonzero]
    data = np.repeat(inv_deg, graph.degrees)
    matrix = sp.csr_matrix(
        (data, graph.indices.copy(), graph.indptr.copy()), shape=(n, n)
    )
    if isolated.size:
        matrix = matrix + sp.csr_matrix(
            (np.ones(isolated.size), (isolated, isolated)), shape=(n, n)
        )
    if lazy:
        matrix = 0.5 * (sp.identity(n, format="csr") + matrix)
    return matrix.tocsr()


def stationary_distribution(graph: Graph) -> np.ndarray:
    """Return ``pi`` with ``pi[v] = deg(v) / 2m`` (Section III-C).

    For graphs with isolated nodes the distribution is normalized over
    positive-degree nodes only, matching the chain restricted to the
    non-absorbing part.
    """
    degrees = graph.degrees.astype(float)
    total = degrees.sum()
    if total == 0:
        raise GraphError("stationary distribution undefined for an edgeless graph")
    return degrees / total


class TransitionOperator:
    """Cached transition operator supporting repeated t-step evolution.

    Builds the sparse matrix once and exposes ``evolve`` (one step) and
    ``distribution_after`` (t steps) plus the stationary distribution.
    Used heavily by the sampled mixing-time measurement, which evolves a
    delta distribution from each sampled source.
    """

    def __init__(self, graph: Graph, lazy: bool = False) -> None:
        self._graph = graph
        self._lazy = lazy
        self._matrix = transition_matrix(graph, lazy=lazy)
        self._stationary = stationary_distribution(graph)

    @property
    def graph(self) -> Graph:
        """The underlying graph."""
        return self._graph

    @property
    def lazy(self) -> bool:
        """Whether this is the lazy (I + P)/2 chain."""
        return self._lazy

    @property
    def matrix(self) -> sp.csr_matrix:
        """The sparse row-stochastic matrix P."""
        return self._matrix

    @property
    def stationary(self) -> np.ndarray:
        """The stationary distribution pi."""
        return self._stationary

    def delta(self, node: int) -> np.ndarray:
        """Return the distribution concentrated at ``node``."""
        self._graph._check_node(node)
        dist = np.zeros(self._graph.num_nodes)
        dist[node] = 1.0
        return dist

    def evolve(self, distribution: np.ndarray) -> np.ndarray:
        """Return ``distribution @ P`` (one walk step)."""
        dist = np.asarray(distribution, dtype=float)
        if dist.shape != (self._graph.num_nodes,):
            raise GraphError(
                f"distribution must have shape ({self._graph.num_nodes},)"
            )
        return self._matrix.T @ dist

    def distribution_after(self, start: np.ndarray | int, steps: int) -> np.ndarray:
        """Return the walk distribution after ``steps`` steps.

        ``start`` may be a node id (delta start) or a full distribution.
        """
        if steps < 0:
            raise GraphError("steps must be non-negative")
        dist = self.delta(start) if isinstance(start, (int, np.integer)) else np.asarray(
            start, dtype=float
        )
        for _ in range(steps):
            dist = self.evolve(dist)
        return dist

    def trajectory(self, start: np.ndarray | int, steps: int) -> np.ndarray:
        """Return a ``(steps + 1, n)`` array of distributions along the walk."""
        dist = self.delta(start) if isinstance(start, (int, np.integer)) else np.asarray(
            start, dtype=float
        )
        out = np.empty((steps + 1, self._graph.num_nodes))
        out[0] = dist
        for t in range(1, steps + 1):
            dist = self.evolve(dist)
            out[t] = dist
        return out

    # ------------------------------------------------------------------
    # batched multi-source evolution
    # ------------------------------------------------------------------
    def distribution_block(self, sources: np.ndarray | list[int]) -> np.ndarray:
        """Return an ``(n, s)`` block of delta distributions.

        Column ``j`` is ``delta(sources[j])``; the block is the input to
        :meth:`evolve_many`.
        """
        return delta_block(self._graph.num_nodes, sources)

    def evolve_many(
        self,
        block: np.ndarray,
        steps: int = 1,
        chunk_size: int | None = None,
        workers: int | None = None,
    ) -> np.ndarray:
        """Advance every column of an ``(n, s)`` block by ``steps`` steps.

        Column ``j`` of the result is bit-identical to evolving column
        ``j`` alone through :meth:`evolve` ``steps`` times, but the
        whole block moves in single sparse x dense products.
        ``chunk_size`` bounds the dense working set at ``O(n * chunk)``
        columns at a time; ``workers`` fans independent chunks out over
        a thread pool.
        """
        from repro.chunking import resolve_chunks, run_chunks

        dense = np.asarray(block, dtype=float)
        n = self._graph.num_nodes
        if dense.ndim != 2 or dense.shape[0] != n:
            raise GraphError(f"block must have shape ({n}, s), got {dense.shape}")
        if chunk_size is None and workers is None:
            return evolve_block(self._matrix, dense, steps)
        out = np.empty_like(dense)
        chunks = resolve_chunks(dense.shape[1], chunk_size, workers)

        def run_chunk(columns: slice) -> None:
            out[:, columns] = evolve_block(self._matrix, dense[:, columns], steps)

        run_chunks(run_chunk, chunks, workers)
        return out

    def tvd_profile(
        self,
        sources: np.ndarray | list[int],
        walk_lengths: np.ndarray | list[int],
        chunk_size: int | None = None,
        workers: int | None = None,
    ) -> np.ndarray:
        """Return the ``(len(sources), len(walk_lengths))`` TVD matrix.

        The batched core of the Figure-1 sampling measurement: every
        source delta is evolved through the recorded walk lengths and
        compared against :attr:`stationary` (see
        :func:`repro.markov.batch.batched_tvd_profile`).
        """
        return batched_tvd_profile(
            self._matrix,
            self._stationary,
            sources,
            walk_lengths,
            chunk_size=chunk_size,
            workers=workers,
        )


# ----------------------------------------------------------------------
# per-graph operator cache
# ----------------------------------------------------------------------
_OPERATOR_CACHE: OrderedDict[tuple[Graph, bool], TransitionOperator] = OrderedDict()
_OPERATOR_CACHE_SIZE = 8
_OPERATOR_CACHE_LOCK = threading.Lock()


def get_operator(graph: Graph, lazy: bool = False) -> TransitionOperator:
    """Return a cached :class:`TransitionOperator` for ``graph``.

    The sampling measurements, trust modulation and the ranking-style
    Sybil defenses all walk the same graphs repeatedly; this
    keyed-by-content LRU (``Graph`` hashes its CSR arrays) lets them
    share one sparse P per ``(graph, lazy)`` pair instead of rebuilding
    it.  Operators are immutable in use — callers must not modify the
    cached matrix in place.
    """
    key = (graph, lazy)
    with _OPERATOR_CACHE_LOCK:
        cached = _OPERATOR_CACHE.get(key)
        if cached is not None:
            _OPERATOR_CACHE.move_to_end(key)
            return cached
    operator = TransitionOperator(graph, lazy=lazy)
    with _OPERATOR_CACHE_LOCK:
        _OPERATOR_CACHE[key] = operator
        _OPERATOR_CACHE.move_to_end(key)
        while len(_OPERATOR_CACHE) > _OPERATOR_CACHE_SIZE:
            _OPERATOR_CACHE.popitem(last=False)
    return operator


def clear_operator_cache() -> None:
    """Drop every cached operator (frees the sparse matrices)."""
    with _OPERATOR_CACHE_LOCK:
        _OPERATOR_CACHE.clear()
