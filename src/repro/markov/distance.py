"""Distances between probability distributions.

The mixing-time definition (Eq. 2) is parameterized by total variation
distance; this module provides it along with a couple of alternatives
used in ablations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError

__all__ = ["total_variation_distance", "l2_distance", "kl_divergence"]


def _validate_pair(p: np.ndarray, q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape or p.ndim != 1:
        raise GraphError("distributions must be 1-D arrays of equal length")
    return p, q


def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Return ``||p - q||_tv = (1/2) sum_j |p_j - q_j|``.

    This is the standard normalization (in [0, 1]); the paper's Eq. (2)
    writes the unhalved sum, which differs only by the constant factor 2
    and does not change which walk length first crosses a threshold when
    epsilon is scaled accordingly.
    """
    p, q = _validate_pair(p, q)
    return 0.5 * float(np.abs(p - q).sum())


def l2_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Return the Euclidean distance between two distributions."""
    p, q = _validate_pair(p, q)
    return float(np.linalg.norm(p - q))


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """Return ``KL(p || q)``; infinite when p puts mass where q has none."""
    p, q = _validate_pair(p, q)
    mask = p > 0
    if np.any(q[mask] == 0):
        return float("inf")
    return float(np.sum(p[mask] * np.log(p[mask] / q[mask])))
