"""Monte-Carlo random walks on graphs.

The Sybil defenses in :mod:`repro.sybil` are built on sampled walks and
random *routes* (SybilGuard's permutation-based deterministic walks);
this module provides both, plus empirical visit distributions for
cross-checking the algebraic evolution in
:class:`~repro.markov.transition.TransitionOperator`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.core import Graph

__all__ = [
    "random_walk",
    "random_walks",
    "empirical_distribution",
    "RouteTable",
]


def random_walk(
    graph: Graph,
    source: int,
    length: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Return a walk as an array of ``length + 1`` node ids.

    The walk follows Eq. (1): at each step a uniformly random neighbor.
    A walk stuck at an isolated node stays there.
    """
    graph._check_node(source)
    if length < 0:
        raise GraphError("length must be non-negative")
    rng = rng or np.random.default_rng()
    path = np.empty(length + 1, dtype=np.int64)
    path[0] = source
    current = source
    indptr, indices = graph.indptr, graph.indices
    for step in range(1, length + 1):
        lo, hi = indptr[current], indptr[current + 1]
        if hi > lo:
            current = int(indices[lo + rng.integers(hi - lo)])
        path[step] = current
    return path


def random_walks(
    graph: Graph,
    source: int,
    length: int,
    count: int,
    rng: np.random.Generator | None = None,
    strategy: str = "batched",
    chunk_size: int | None = None,
    workers: int | None = None,
) -> np.ndarray:
    """Return ``count`` independent walks as a ``(count, length + 1)`` array.

    Rides the vectorized engine (:func:`repro.markov.walk_batch.walk_block`)
    by default; ``strategy="sequential"`` keeps the per-walk oracle.
    Each walk draws from its own child stream of ``rng`` (fresh entropy
    when ``rng`` is None), so results do not depend on
    ``chunk_size``/``workers``.
    """
    from repro.markov.walk_batch import walk_block

    graph._check_node(source)
    if count < 1:
        raise GraphError("count must be positive")
    seed = rng if rng is not None else np.random.SeedSequence()
    return walk_block(
        graph,
        np.full(count, source, dtype=np.int64),
        length,
        seed=seed,
        chunk_size=chunk_size,
        workers=workers,
        strategy=strategy,
    )


def empirical_distribution(
    graph: Graph,
    source: int,
    length: int,
    num_samples: int,
    rng: np.random.Generator | None = None,
    strategy: str = "batched",
    chunk_size: int | None = None,
    workers: int | None = None,
) -> np.ndarray:
    """Estimate the ``length``-step distribution from ``num_samples`` walks.

    Converges to ``TransitionOperator.distribution_after(source, length)``
    as the sample count grows; tests use this agreement as an invariant.
    Endpoint counting runs through the engine's visit-count mode
    (``record="last"``), so memory stays O(num_nodes) however many
    samples are drawn.
    """
    from repro.markov.walk_batch import walk_visit_counts

    graph._check_node(source)
    if num_samples < 1:
        raise GraphError("num_samples must be positive")
    seed = rng if rng is not None else np.random.SeedSequence()
    counts = walk_visit_counts(
        graph,
        np.full(num_samples, source, dtype=np.int64),
        length,
        seed=seed,
        record="last",
        chunk_size=chunk_size,
        workers=workers,
        strategy=strategy,
    )
    return counts / num_samples


class RouteTable:
    """Per-node random permutations for SybilGuard-style *random routes*.

    Each node fixes a random permutation mapping incoming-edge positions
    to outgoing-edge positions.  A route entering node ``v`` through its
    ``i``-th incident edge always leaves through edge ``perm_v[i]``,
    which makes routes deterministic given entry point and guarantees
    the back-traceable / convergent route properties SybilGuard relies
    on.
    """

    def __init__(self, graph: Graph, seed: int = 0) -> None:
        self._graph = graph
        rng = np.random.default_rng(seed)
        self._perms: list[np.ndarray] = [
            rng.permutation(graph.degree(v)) for v in range(graph.num_nodes)
        ]
        # Precomputed route-stepping arrays.  Directed half-edge i is
        # (src[i] -> indices[i]) in CSR order; because CSR order sorts
        # by (src, dst) and the half-edge multiset is symmetric,
        # lexsorting by (dst, src) maps each half-edge to its reverse,
        # giving the entry *position* of every hop without a per-hop
        # neighbor scan.  Applying each node's exit permutation to the
        # entry positions yields the half-edge successor map: one O(1)
        # lookup per route step (the per-hop searchsorted survives only
        # in the public ``next_hop``, which starts from node ids).
        indptr, indices = graph.indptr, graph.indices
        if indices.size:
            src = np.repeat(graph.nodes(), graph.degrees)
            reverse = np.lexsort((src, indices))
            perm_flat = np.concatenate(self._perms)
            self._edge_successor = (
                indptr[indices] + perm_flat[reverse]
            ).astype(np.int64)
        else:
            self._edge_successor = np.empty(0, dtype=np.int64)

    @property
    def graph(self) -> Graph:
        """The graph the routes are defined over."""
        return self._graph

    def _edge_position(self, node: int, neighbor: int) -> int:
        indptr, indices = self._graph.indptr, self._graph.indices
        lo, hi = int(indptr[node]), int(indptr[node + 1])
        pos = int(np.searchsorted(indices[lo:hi], neighbor))
        if lo + pos >= hi or indices[lo + pos] != neighbor:
            raise GraphError(f"{neighbor} is not adjacent to {node}")
        return pos

    def next_hop(self, previous: int, current: int) -> int:
        """Return the node a route at ``current`` (arrived from
        ``previous``) exits to."""
        edge = self._graph.indptr[previous] + self._edge_position(previous, current)
        return int(self._graph.indices[self._edge_successor[edge]])

    def route(self, source: int, first_hop: int, length: int) -> np.ndarray:
        """Return the deterministic route of ``length`` edges starting
        ``source -> first_hop``."""
        if length < 1:
            raise GraphError("route length must be at least 1")
        path = np.empty(length + 1, dtype=np.int64)
        path[0] = source
        path[1] = first_hop
        indices = self._graph.indices
        successor = self._edge_successor
        edge = int(self._graph.indptr[source]) + self._edge_position(
            source, first_hop
        )
        for i in range(2, length + 1):
            edge = int(successor[edge])
            path[i] = indices[edge]
        return path

    def routes_from(self, source: int, length: int) -> list[np.ndarray]:
        """Return one route per incident edge of ``source``."""
        return [
            self.route(source, int(nbr), length)
            for nbr in self._graph.neighbors(source)
        ]
