"""Monte-Carlo random walks on graphs.

The Sybil defenses in :mod:`repro.sybil` are built on sampled walks and
random *routes* (SybilGuard's permutation-based deterministic walks);
this module provides both, plus empirical visit distributions for
cross-checking the algebraic evolution in
:class:`~repro.markov.transition.TransitionOperator`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.core import Graph

__all__ = [
    "random_walk",
    "random_walks",
    "empirical_distribution",
    "RouteTable",
]


def random_walk(
    graph: Graph,
    source: int,
    length: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Return a walk as an array of ``length + 1`` node ids.

    The walk follows Eq. (1): at each step a uniformly random neighbor.
    A walk stuck at an isolated node stays there.
    """
    graph._check_node(source)
    if length < 0:
        raise GraphError("length must be non-negative")
    rng = rng or np.random.default_rng()
    path = np.empty(length + 1, dtype=np.int64)
    path[0] = source
    current = source
    indptr, indices = graph.indptr, graph.indices
    for step in range(1, length + 1):
        lo, hi = indptr[current], indptr[current + 1]
        if hi > lo:
            current = int(indices[lo + rng.integers(hi - lo)])
        path[step] = current
    return path


def random_walks(
    graph: Graph,
    source: int,
    length: int,
    count: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Return ``count`` independent walks as a ``(count, length + 1)`` array."""
    rng = rng or np.random.default_rng()
    return np.stack(
        [random_walk(graph, source, length, rng=rng) for _ in range(count)]
    )


def empirical_distribution(
    graph: Graph,
    source: int,
    length: int,
    num_samples: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Estimate the ``length``-step distribution from ``num_samples`` walks.

    Converges to ``TransitionOperator.distribution_after(source, length)``
    as the sample count grows; tests use this agreement as an invariant.
    """
    if num_samples < 1:
        raise GraphError("num_samples must be positive")
    rng = rng or np.random.default_rng()
    counts = np.zeros(graph.num_nodes, dtype=np.int64)
    for _ in range(num_samples):
        walk = random_walk(graph, source, length, rng=rng)
        counts[walk[-1]] += 1
    return counts / num_samples


class RouteTable:
    """Per-node random permutations for SybilGuard-style *random routes*.

    Each node fixes a random permutation mapping incoming-edge positions
    to outgoing-edge positions.  A route entering node ``v`` through its
    ``i``-th incident edge always leaves through edge ``perm_v[i]``,
    which makes routes deterministic given entry point and guarantees
    the back-traceable / convergent route properties SybilGuard relies
    on.
    """

    def __init__(self, graph: Graph, seed: int = 0) -> None:
        self._graph = graph
        rng = np.random.default_rng(seed)
        self._perms: list[np.ndarray] = [
            rng.permutation(graph.degree(v)) for v in range(graph.num_nodes)
        ]

    @property
    def graph(self) -> Graph:
        """The graph the routes are defined over."""
        return self._graph

    def _edge_position(self, node: int, neighbor: int) -> int:
        nbrs = self._graph.neighbors(node)
        pos = int(np.searchsorted(nbrs, neighbor))
        if pos >= nbrs.size or nbrs[pos] != neighbor:
            raise GraphError(f"{neighbor} is not adjacent to {node}")
        return pos

    def next_hop(self, previous: int, current: int) -> int:
        """Return the node a route at ``current`` (arrived from
        ``previous``) exits to."""
        enter = self._edge_position(current, previous)
        leave = int(self._perms[current][enter])
        return int(self._graph.neighbors(current)[leave])

    def route(self, source: int, first_hop: int, length: int) -> np.ndarray:
        """Return the deterministic route of ``length`` edges starting
        ``source -> first_hop``."""
        if length < 1:
            raise GraphError("route length must be at least 1")
        path = np.empty(length + 1, dtype=np.int64)
        path[0] = source
        path[1] = first_hop
        prev, cur = source, first_hop
        for i in range(2, length + 1):
            nxt = self.next_hop(prev, cur)
            path[i] = nxt
            prev, cur = cur, nxt
        return path

    def routes_from(self, source: int, length: int) -> list[np.ndarray]:
        """Return one route per incident edge of ``source``."""
        return [
            self.route(source, int(nbr), length)
            for nbr in self._graph.neighbors(source)
        ]
