"""Markov-chain substrate: transition operators, walks and distances."""

from repro.markov.batch import (
    batched_tvd_profile,
    delta_block,
    evolve_block,
    sharded_stationary,
)
from repro.markov.hitting import (
    commute_time,
    effective_resistance,
    estimate_cover_time,
    estimate_hitting_time,
    hitting_time,
    hitting_times_to,
)
from repro.markov.walk_batch import (
    NO_HIT,
    walk_block,
    walk_cover_steps,
    walk_endpoints,
    walk_first_hits,
    walk_visit_counts,
)
from repro.markov.distance import kl_divergence, l2_distance, total_variation_distance
from repro.markov.transition import (
    TransitionOperator,
    clear_operator_cache,
    get_operator,
    stationary_distribution,
    transition_matrix,
)
from repro.markov.walks import (
    RouteTable,
    empirical_distribution,
    random_walk,
    random_walks,
)

__all__ = [
    "TransitionOperator",
    "transition_matrix",
    "stationary_distribution",
    "get_operator",
    "clear_operator_cache",
    "delta_block",
    "evolve_block",
    "batched_tvd_profile",
    "sharded_stationary",
    "total_variation_distance",
    "l2_distance",
    "kl_divergence",
    "random_walk",
    "random_walks",
    "empirical_distribution",
    "RouteTable",
    "NO_HIT",
    "walk_block",
    "walk_endpoints",
    "walk_first_hits",
    "walk_visit_counts",
    "walk_cover_steps",
    "hitting_time",
    "hitting_times_to",
    "commute_time",
    "effective_resistance",
    "estimate_hitting_time",
    "estimate_cover_time",
]
