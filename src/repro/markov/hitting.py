"""Hitting, commute and cover times of the social-graph walk.

Mixing time is one clock on a random walk; the Sybil-defense and
routing literature also leans on its cousins:

* **hitting time** H(u, v): expected steps for a walk from u to first
  reach v (route-length budgeting in SybilGuard-style protocols);
* **commute time** C(u, v) = H(u, v) + H(v, u): equals
  ``2 m * R_eff(u, v)`` (effective resistance), the spectral quantity
  behind random-walk betweenness;
* **cover time**: expected steps to visit every node — the budget for
  a walk-based gossip/search to reach the whole graph.

Exact values come from linear solves on the Laplacian (fine for the
analog sizes here); a Monte-Carlo estimator covers larger graphs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DisconnectedGraphError, GraphError
from repro.graph.core import Graph
from repro.graph.traversal import is_connected
from repro.markov.walk_batch import NO_HIT, walk_cover_steps, walk_first_hits

__all__ = [
    "hitting_time",
    "hitting_times_to",
    "commute_time",
    "effective_resistance",
    "estimate_hitting_time",
    "estimate_cover_time",
]


def _laplacian(graph: Graph) -> np.ndarray:
    """Dense combinatorial Laplacian, built straight from the CSR arrays.

    One fancy-indexed assignment marks every directed half-edge
    (``L[u, v] = -1``; the graph is simple, so assignment and the old
    per-edge subtraction agree), then the diagonal gets the degrees.
    """
    n = graph.num_nodes
    lap = np.zeros((n, n))
    if graph.num_edges:
        src = np.repeat(graph.nodes(), graph.degrees)
        lap[src, graph.indices] = -1.0
    np.fill_diagonal(lap, graph.degrees.astype(float))
    return lap


def hitting_times_to(graph: Graph, target: int) -> np.ndarray:
    """Return H(u, target) for every u, by solving the linear system.

    ``H(target, target) = 0``; for u != target,
    ``H(u) = 1 + mean over neighbors w of H(w)``.
    """
    graph._check_node(target)
    if not is_connected(graph):
        raise DisconnectedGraphError("hitting times need a connected graph")
    n = graph.num_nodes
    if n == 1:
        return np.zeros(1)
    # unknowns: H(u) for u != target
    others = [u for u in range(n) if u != target]
    index = {u: i for i, u in enumerate(others)}
    a = np.zeros((n - 1, n - 1))
    b = np.ones(n - 1)
    for u in others:
        i = index[u]
        a[i, i] = 1.0
        deg = graph.degree(u)
        for w in graph.neighbors(u):
            w = int(w)
            if w != target:
                a[i, index[w]] -= 1.0 / deg
    solution = np.linalg.solve(a, b)
    out = np.zeros(n)
    for u in others:
        out[u] = solution[index[u]]
    return out


def hitting_time(graph: Graph, source: int, target: int) -> float:
    """Return the exact expected hitting time H(source, target)."""
    return float(hitting_times_to(graph, target)[source])


def effective_resistance(graph: Graph, u: int, v: int) -> float:
    """Return the effective resistance between u and v.

    Computed from the Laplacian pseudo-inverse:
    ``R(u,v) = L+[u,u] + L+[v,v] - 2 L+[u,v]``.
    """
    graph._check_node(u)
    graph._check_node(v)
    if u == v:
        return 0.0
    if not is_connected(graph):
        raise DisconnectedGraphError("effective resistance needs connectivity")
    pinv = np.linalg.pinv(_laplacian(graph))
    return float(pinv[u, u] + pinv[v, v] - 2 * pinv[u, v])


def commute_time(graph: Graph, u: int, v: int) -> float:
    """Return C(u, v) = H(u, v) + H(v, u) = 2 m R_eff(u, v)."""
    return 2.0 * graph.num_edges * effective_resistance(graph, u, v)


def estimate_hitting_time(
    graph: Graph,
    source: int,
    target: int,
    num_walks: int = 200,
    max_steps: int | None = None,
    seed: int = 0,
    strategy: str = "batched",
    chunk_size: int | None = None,
    workers: int | None = None,
) -> float:
    """Monte-Carlo estimate of H(source, target) by sampled first hits.

    Runs ``num_walks`` walks from ``source`` through the vectorized
    engine's first-hit mode (``max_steps`` budget, default
    ``50 n log n``) and averages the first-hit steps over the walks
    that reached the target; raises when none did.  Converges to
    :func:`hitting_time` — the linear solve stays the exact reference,
    this estimator covers graphs too large to solve densely.
    """
    graph._check_node(source)
    graph._check_node(target)
    if not is_connected(graph):
        raise DisconnectedGraphError("hitting times need a connected graph")
    if num_walks < 1:
        raise GraphError("num_walks must be positive")
    if source == target:
        return 0.0
    n = graph.num_nodes
    budget = max_steps or int(50 * n * np.log(max(n, 2)))
    mask = np.zeros(n, dtype=bool)
    mask[target] = True
    hits = walk_first_hits(
        graph,
        np.full(num_walks, source, dtype=np.int64),
        budget,
        mask,
        seed=np.random.SeedSequence(seed),
        chunk_size=chunk_size,
        workers=workers,
        strategy=strategy,
    )
    reached = hits[hits != NO_HIT]
    if reached.size == 0:
        raise GraphError(
            f"no walk hit the target within {budget} steps; increase max_steps"
        )
    return float(reached.mean())


def estimate_cover_time(
    graph: Graph,
    num_walks: int = 20,
    max_steps: int | None = None,
    seed: int = 0,
    strategy: str = "batched",
    chunk_size: int | None = None,
    workers: int | None = None,
) -> float:
    """Monte-Carlo estimate of the cover time from random starts.

    Walks until all nodes are visited (or ``max_steps``, default
    ``50 n log n`` — well past the O(n log n) cover time of expanders);
    returns the mean steps-to-cover over completed walks.  Raises when
    no walk covers within the budget (slow mixer or budget too small).
    Start nodes come from one child stream of ``seed`` and every walk
    advances on its own stream through the vectorized engine, so the
    estimate is independent of ``chunk_size``/``workers``.
    """
    if graph.num_nodes < 2:
        raise GraphError("cover time needs at least 2 nodes")
    if not is_connected(graph):
        raise DisconnectedGraphError("cover time needs a connected graph")
    if num_walks < 1:
        raise GraphError("num_walks must be positive")
    n = graph.num_nodes
    budget = max_steps or int(50 * n * np.log(n))
    start_seed, walk_seed = np.random.SeedSequence(seed).spawn(2)
    starts = np.random.default_rng(start_seed).integers(
        n, size=num_walks, dtype=np.int64
    )
    covered = walk_cover_steps(
        graph,
        starts,
        budget,
        seed=walk_seed,
        chunk_size=chunk_size,
        workers=workers,
        strategy=strategy,
    )
    completed = covered[covered != NO_HIT]
    if completed.size == 0:
        raise GraphError(
            f"no walk covered the graph within {budget} steps; "
            "increase max_steps"
        )
    return float(completed.mean())
