"""Vectorized Monte-Carlo walk engine (the third block engine).

The dense-distribution engine (:mod:`repro.markov.batch`) and the BFS
engine (:mod:`repro.graph.bfs_batch`) cover algebraic evolution and
shortest-path levels; every *sampled* walk in the repo — escape
probability, SybilDefender/SybilInfer statistics, GateKeeper
distributor selection, Whānau table sampling, Monte-Carlo
hitting/cover estimators, empirical distributions — still needs actual
random trajectories.  This module advances a ``(num_walks,)`` state
vector one step per iteration with a single CSR gather::

    next = indices[indptr[state] + floor(u * degree[state])]

instead of ``num_walks x length`` Python iterations, in four modes:

* :func:`walk_block` — full trajectories, ``(num_walks, length + 1)``;
* :func:`walk_endpoints` — endpoints only, O(num_walks) memory;
* :func:`walk_first_hits` — first step touching a node mask
  (:data:`NO_HIT` when a walk never does), the escape-probability and
  Monte-Carlo hitting-time primitive;
* :func:`walk_visit_counts` — per-node visit accumulation
  (``record="last"`` is the empirical-distribution estimator);

plus :func:`walk_cover_steps`, the cover-time tracker built on the
same stepping kernel.

**Seed discipline.**  Every walk owns an independent child stream of
one root :class:`numpy.random.SeedSequence` (``spawn`` per walk), and
each walk's step ``t`` consumes exactly the ``t``-th uniform double of
its own stream.  Results are therefore **bit-identical** for every
``chunk_size``/``workers`` combination and identical to the per-walk
``strategy="sequential"`` oracle — the property the equivalence suite
pins.  Chunking goes through the shared planner
(:mod:`repro.chunking`); every chunk reports per-block spans and the
``markov.walk.walks`` / ``markov.walk.steps`` /
``markov.walk.absorbed`` counters into :mod:`repro.telemetry`.

``executor="process"`` ships each chunk's seed streams (generator
state pickles exactly) to the shared-memory process backend of
:mod:`repro.parallel`; the chunk kernels are the same module-level
functions the thread closures call, so the bit-identity contract
extends across the whole executor grid.
"""

from __future__ import annotations

import threading
from typing import Sequence

import numpy as np

from repro import parallel, telemetry
from repro.chunking import DEFAULT_CHUNK_SIZE, resolve_chunks, run_chunks
from repro.errors import GraphError
from repro.graph.core import Graph
from repro.graph.shard import ShardedGraph

__all__ = [
    "NO_HIT",
    "walk_block",
    "walk_endpoints",
    "walk_first_hits",
    "walk_visit_counts",
    "walk_cover_steps",
    "DEFAULT_CHUNK_SIZE",
]

#: Sentinel returned by :func:`walk_first_hits` / :func:`walk_cover_steps`
#: for walks that never reach the mask / never cover within the budget.
NO_HIT = -1

#: Uniform draws are generated in step-blocks of this many doubles per
#: walk, bounding the random-number working set at
#: ``O(chunk_size * _STEP_BLOCK)`` for open-ended budgets.  Block size
#: cannot affect results: doubles come off each walk's own stream in
#: step order regardless of how they are grouped into draws.
_STEP_BLOCK = 1024

_SeedLike = "int | np.random.SeedSequence | np.random.Generator"


def _validate_sources(
    graph: "Graph | ShardedGraph", sources: np.ndarray | Sequence[int]
) -> np.ndarray:
    chosen = np.asarray(list(sources), dtype=np.int64)
    if chosen.size and (chosen.min() < 0 or chosen.max() >= graph.num_nodes):
        raise GraphError(
            f"sources must be node ids in [0, {graph.num_nodes})"
        )
    return chosen


def _validate_strategy(strategy: str) -> None:
    if strategy not in ("batched", "sequential"):
        raise GraphError(
            f"unknown strategy {strategy!r}; use 'batched' or 'sequential'"
        )


def _streams(seed, num_walks: int) -> list[np.random.Generator]:
    """Spawn one independent child generator per walk.

    ``seed`` may be an int (reproducible root), a
    :class:`~numpy.random.SeedSequence` or a
    :class:`~numpy.random.Generator`; the latter two are *advanced* by
    the spawn, so successive calls draw fresh independent streams.
    """
    if isinstance(seed, np.random.Generator):
        return seed.spawn(num_walks)
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(int(seed))
    )
    return [np.random.default_rng(child) for child in root.spawn(num_walks)]


def _uniform_block(
    streams: Sequence[np.random.Generator], count: int
) -> np.ndarray:
    """Return the next ``count`` uniforms of every stream as ``(k, count)``."""
    return np.stack([g.random(count) for g in streams], axis=0)


def _advance(
    states: np.ndarray,
    u: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    degrees: np.ndarray,
) -> np.ndarray:
    """One vectorized walk step; isolated nodes stay put.

    ``floor(u * deg)`` is clipped to ``deg - 1`` so a uniform rounding
    up against 1.0 on a high-degree node cannot index past the row.
    """
    deg = degrees[states]
    if deg.all():
        # fast path: every walk sits on a positive-degree node (the
        # common case on connected graphs) — skip the mask round-trip
        offsets = (u * deg).astype(np.int64)
        np.minimum(offsets, deg - 1, out=offsets)
        return indices[indptr[states] + offsets]
    moving = deg > 0
    out = states.copy()
    if not moving.any():
        return out
    mstates = states[moving]
    mdeg = deg[moving]
    offsets = (u[moving] * mdeg).astype(np.int64)
    np.minimum(offsets, mdeg - 1, out=offsets)
    out[moving] = indices[indptr[mstates] + offsets]
    return out


def _step_sequential(
    state: int,
    u: float,
    indptr: np.ndarray,
    indices: np.ndarray,
    degrees: np.ndarray,
) -> int:
    """Scalar twin of :func:`_advance` — same IEEE ops, same clip."""
    deg = degrees[state]
    if deg == 0:
        return state
    offset = int(u * deg)
    if offset >= deg:
        offset = int(deg - 1)
    return int(indices[indptr[state] + offset])


class _DenseStepper:
    """Stepping kernel over a resident graph's CSR arrays."""

    __slots__ = ("indptr", "indices", "degrees")

    def __init__(self, graph: Graph) -> None:
        self.indptr = graph.indptr
        self.indices = graph.indices
        self.degrees = graph.degrees

    def advance(self, states: np.ndarray, u: np.ndarray) -> np.ndarray:
        return _advance(states, u, self.indptr, self.indices, self.degrees)

    def step(self, state: int, u: float) -> int:
        return _step_sequential(state, u, self.indptr, self.indices, self.degrees)


class _ShardedStepper:
    """Stepping kernel that gathers from memory-mapped shards.

    States are grouped by owning shard per step; each group's degree
    lookup and neighbor gather run against that shard's local arrays
    with the exact per-element arithmetic of :func:`_advance`
    (``floor(u * deg)`` clipped to ``deg - 1``; isolated nodes stay
    put), so trajectories are bit-identical to the resident kernel for
    the same seed streams.
    """

    __slots__ = ("_sharded",)

    def __init__(self, sharded: ShardedGraph) -> None:
        self._sharded = sharded

    def advance(self, states: np.ndarray, u: np.ndarray) -> np.ndarray:
        out = states.copy()
        sids = self._sharded.shard_index_of(states)
        for k in np.unique(sids):
            shard = self._sharded.shard(int(k))
            sel = np.flatnonzero(sids == k)
            local = states[sel] - shard.lo
            starts = np.asarray(shard.indptr[local])
            deg = np.asarray(shard.indptr[local + 1]) - starts
            moving = deg > 0
            if not moving.any():
                continue
            mdeg = deg[moving]
            offsets = (u[sel][moving] * mdeg).astype(np.int64)
            np.minimum(offsets, mdeg - 1, out=offsets)
            out[sel[moving]] = shard.indices[starts[moving] + offsets]
        return out

    def step(self, state: int, u: float) -> int:
        shard = self._sharded.shard(self._sharded.shard_index_of(int(state)))
        local = int(state) - shard.lo
        start = int(shard.indptr[local])
        deg = int(shard.indptr[local + 1]) - start
        if deg == 0:
            return int(state)
        offset = int(u * deg)
        if offset >= deg:
            offset = deg - 1
        return int(shard.indices[start + offset])


def _stepper(graph: "Graph | ShardedGraph") -> "_DenseStepper | _ShardedStepper":
    if isinstance(graph, ShardedGraph):
        return _ShardedStepper(graph)
    return _DenseStepper(graph)


# ----------------------------------------------------------------------
# per-chunk kernels (shared verbatim by the thread and process backends)
# ----------------------------------------------------------------------
def _block_chunk(stepper, states, streams, length, out_block) -> None:
    """Advance one chunk, recording every position into ``out_block``."""
    out_block[:, 0] = states
    step = 0
    while step < length:
        count = min(_STEP_BLOCK, length - step)
        u = _uniform_block(streams, count)
        for t in range(count):
            states = stepper.advance(states, u[:, t])
            out_block[:, step + t + 1] = states
        step += count


def _endpoints_chunk(stepper, states, streams, length) -> np.ndarray:
    """Advance one chunk ``length`` steps; return the final states."""
    step = 0
    while step < length:
        count = min(_STEP_BLOCK, length - step)
        u = _uniform_block(streams, count)
        for t in range(count):
            states = stepper.advance(states, u[:, t])
        step += count
    return states


def _first_hits_chunk(
    stepper, states, streams, length, hit_mask
) -> tuple[np.ndarray, int]:
    """First-hit steps for one chunk; returns ``(hits, steps taken)``."""
    hits = np.full(states.size, NO_HIT, dtype=np.int64)
    hits[hit_mask[states]] = 0
    alive = hits == NO_HIT
    step = 0
    steps_taken = 0
    while step < length and alive.any():
        count = min(_STEP_BLOCK, length - step)
        u = _uniform_block(streams, count)
        for t in range(count):
            states = stepper.advance(states, u[:, t])
            steps_taken += states.size
            newly = alive & hit_mask[states]
            if newly.any():
                hits[newly] = step + t + 1
                alive &= ~newly
                if not alive.any():
                    break
        step += count
    return hits, steps_taken


def _visit_chunk(stepper, states, streams, length, record, n) -> np.ndarray:
    """Per-node visit counts contributed by one chunk."""
    local = np.zeros(n, dtype=np.int64)
    if record == "all":
        local += np.bincount(states, minlength=n)
    step = 0
    while step < length:
        count = min(_STEP_BLOCK, length - step)
        u = _uniform_block(streams, count)
        for t in range(count):
            states = stepper.advance(states, u[:, t])
            if record == "all":
                local += np.bincount(states, minlength=n)
        step += count
    if record == "last":
        local += np.bincount(states, minlength=n)
    return local


def _cover_chunk(
    stepper, states, streams, max_steps, n
) -> tuple[np.ndarray, int]:
    """Cover steps for one chunk; returns ``(covered, steps taken)``."""
    k = states.size
    rows = np.arange(k)
    visited = np.zeros((k, n), dtype=bool)
    visited[rows, states] = True
    remaining = np.full(k, n - 1, dtype=np.int64)
    covered = np.full(k, NO_HIT, dtype=np.int64)
    if n == 1:
        covered[:] = 0
    alive = covered == NO_HIT
    step = 0
    steps_taken = 0
    while step < max_steps and alive.any():
        count = min(_STEP_BLOCK, max_steps - step)
        u = _uniform_block(streams, count)
        for t in range(count):
            states = stepper.advance(states, u[:, t])
            steps_taken += k
            newly = alive & ~visited[rows, states]
            visited[rows[newly], states[newly]] = True
            remaining[newly] -= 1
            done = newly & (remaining == 0)
            if done.any():
                covered[done] = step + t + 1
                alive &= ~done
                if not alive.any():
                    break
        step += count
    return covered, steps_taken


def _walk_process_chunk(payload: dict, columns: slice) -> np.ndarray | None:
    """Process-backend chunk task dispatching on walk mode.

    ``states``/``streams`` arrive per chunk (seed streams pickle their
    exact generator state); outputs land in the shared buffer except
    for ``visit`` partial counts, which are returned for the parent to
    sum (integer addition commutes, so merge order cannot matter).
    """
    graph = parallel.resolve(payload["graph"])
    stepper = _stepper(graph)
    states = payload["states"]
    streams = payload["streams"]
    mode = payload["mode"]
    tel = telemetry.current()
    result = None
    with tel.span("markov.walk.chunk"):
        if mode == "block":
            out = parallel.resolve(payload["out"])
            _block_chunk(stepper, states, streams, payload["length"], out[columns])
            steps = states.size * payload["length"]
        elif mode == "endpoints":
            out = parallel.resolve(payload["out"])
            out[columns] = _endpoints_chunk(
                stepper, states, streams, payload["length"]
            )
            steps = states.size * payload["length"]
        elif mode == "first_hits":
            out = parallel.resolve(payload["out"])
            hit_mask = parallel.resolve(payload["mask"])
            hits, steps = _first_hits_chunk(
                stepper, states, streams, payload["length"], hit_mask
            )
            out[columns] = hits
            tel.count("markov.walk.absorbed", int(np.count_nonzero(hits != NO_HIT)))
        elif mode == "visit":
            result = _visit_chunk(
                stepper, states, streams, payload["length"], payload["record"],
                graph.num_nodes,
            )
            steps = states.size * payload["length"]
        else:  # cover
            out = parallel.resolve(payload["out"])
            covered, steps = _cover_chunk(
                stepper, states, streams, payload["max_steps"], graph.num_nodes
            )
            out[columns] = covered
            tel.count(
                "markov.walk.absorbed", int(np.count_nonzero(covered != NO_HIT))
            )
    tel.count("markov.walk.steps", steps)
    return result


def _walk_chunk_payload(chosen: np.ndarray, streams: list):
    """Per-chunk payload builder: that chunk's states and seed streams."""

    def build(columns: slice) -> dict:
        return {"states": chosen[columns].copy(), "streams": streams[columns]}

    return build


# ----------------------------------------------------------------------
# mode (a): full trajectories
# ----------------------------------------------------------------------
def walk_block(
    graph: Graph | ShardedGraph,
    sources: np.ndarray | Sequence[int],
    length: int,
    seed: _SeedLike = 0,
    chunk_size: int | None = None,
    workers: int | None = None,
    strategy: str = "batched",
    executor: str | None = None,
) -> np.ndarray:
    """Return one walk per source as a ``(len(sources), length + 1)`` block.

    Row ``i`` is a ``length``-step uniform random walk from
    ``sources[i]`` (column 0 is the source itself), driven by walk
    ``i``'s own seed stream — so the block is bit-identical for every
    ``chunk_size``/``workers`` setting and to the per-walk
    ``strategy="sequential"`` oracle.
    """
    chosen = _validate_sources(graph, sources)
    _validate_strategy(strategy)
    if length < 0:
        raise GraphError("length must be non-negative")
    out = np.empty((chosen.size, length + 1), dtype=np.int64)
    if chosen.size == 0:
        return out
    kind, workers = parallel.resolve_execution(executor, workers)
    streams = _streams(seed, chosen.size)
    stepper = _stepper(graph)
    tel = telemetry.current()
    with tel.span("markov.walk.block"):
        tel.count("markov.walk.walks", int(chosen.size))
        if strategy == "sequential":
            for i in range(chosen.size):
                out[i] = _sequential_trajectory(
                    int(chosen[i]), streams[i], length, stepper
                )
            tel.count("markov.walk.steps", int(chosen.size) * length)
            return out
        chunks = resolve_chunks(chosen.size, chunk_size, workers)
        if parallel.use_processes(kind, workers, len(chunks)):
            out_spec, out_view = parallel.create_output(out.shape, np.int64)
            try:
                parallel.run_process_chunks(
                    _walk_process_chunk,
                    {
                        "graph": parallel.publish(graph),
                        "mode": "block",
                        "length": length,
                        "out": out_spec,
                    },
                    chunks,
                    workers,
                    chunk_payload=_walk_chunk_payload(chosen, streams),
                )
                return np.array(out_view)
            finally:
                parallel.release([out_spec])

        def run_chunk(columns: slice) -> None:
            with tel.span("markov.walk.chunk"):
                _block_chunk(
                    stepper, chosen[columns].copy(), streams[columns], length,
                    out[columns],
                )
            tel.count("markov.walk.steps", (columns.stop - columns.start) * length)

        run_chunks(run_chunk, chunks, workers)
    return out


def _sequential_trajectory(
    source: int,
    stream: np.random.Generator,
    length: int,
    stepper: "_DenseStepper | _ShardedStepper",
) -> np.ndarray:
    path = np.empty(length + 1, dtype=np.int64)
    path[0] = source
    state = source
    u = stream.random(length)
    for t in range(length):
        state = stepper.step(state, u[t])
        path[t + 1] = state
    return path


# ----------------------------------------------------------------------
# mode (b): endpoints only
# ----------------------------------------------------------------------
def walk_endpoints(
    graph: Graph | ShardedGraph,
    sources: np.ndarray | Sequence[int],
    length: int,
    seed: _SeedLike = 0,
    chunk_size: int | None = None,
    workers: int | None = None,
    strategy: str = "batched",
    executor: str | None = None,
) -> np.ndarray:
    """Return the ``length``-step endpoint of one walk per source.

    O(num_walks) memory: only the state vector advances — the mode the
    sampling defenses (SybilDefender calibration, SybilInfer traces,
    GateKeeper distributors, Whānau tables) need.
    """
    chosen = _validate_sources(graph, sources)
    _validate_strategy(strategy)
    if length < 0:
        raise GraphError("length must be non-negative")
    out = np.empty(chosen.size, dtype=np.int64)
    if chosen.size == 0:
        return out
    kind, workers = parallel.resolve_execution(executor, workers)
    streams = _streams(seed, chosen.size)
    stepper = _stepper(graph)
    tel = telemetry.current()
    with tel.span("markov.walk.endpoints"):
        tel.count("markov.walk.walks", int(chosen.size))
        if strategy == "sequential":
            for i in range(chosen.size):
                out[i] = _sequential_trajectory(
                    int(chosen[i]), streams[i], length, stepper
                )[-1]
            tel.count("markov.walk.steps", int(chosen.size) * length)
            return out
        chunks = resolve_chunks(chosen.size, chunk_size, workers)
        if parallel.use_processes(kind, workers, len(chunks)):
            out_spec, out_view = parallel.create_output(out.shape, np.int64)
            try:
                parallel.run_process_chunks(
                    _walk_process_chunk,
                    {
                        "graph": parallel.publish(graph),
                        "mode": "endpoints",
                        "length": length,
                        "out": out_spec,
                    },
                    chunks,
                    workers,
                    chunk_payload=_walk_chunk_payload(chosen, streams),
                )
                return np.array(out_view)
            finally:
                parallel.release([out_spec])

        def run_chunk(columns: slice) -> None:
            with tel.span("markov.walk.chunk"):
                out[columns] = _endpoints_chunk(
                    stepper, chosen[columns].copy(), streams[columns], length
                )
            tel.count("markov.walk.steps", (columns.stop - columns.start) * length)

        run_chunks(run_chunk, chunks, workers)
    return out


# ----------------------------------------------------------------------
# mode (c): first hit against a node mask
# ----------------------------------------------------------------------
def walk_first_hits(
    graph: Graph | ShardedGraph,
    sources: np.ndarray | Sequence[int],
    length: int,
    mask: np.ndarray,
    seed: _SeedLike = 0,
    chunk_size: int | None = None,
    workers: int | None = None,
    strategy: str = "batched",
    executor: str | None = None,
) -> np.ndarray:
    """Return per walk the first step index at which it stands on ``mask``.

    Step 0 is the source itself; walks that never touch the mask within
    ``length`` steps report :data:`NO_HIT`.  This is the
    escape-probability / Monte-Carlo hitting-time primitive: ``mask``
    marks the absorbing region and ``first_hit <= w`` recovers the
    absorbed-by-``w`` indicator for any sub-budget ``w``.  A chunk
    whose walks have all been absorbed stops stepping early — absorbed
    walks' hit steps are final, and each walk only ever consumes its
    own stream.
    """
    chosen = _validate_sources(graph, sources)
    _validate_strategy(strategy)
    if length < 0:
        raise GraphError("length must be non-negative")
    hit_mask = np.asarray(mask, dtype=bool)
    if hit_mask.shape != (graph.num_nodes,):
        raise GraphError(
            f"mask must have shape ({graph.num_nodes},), got {hit_mask.shape}"
        )
    out = np.empty(chosen.size, dtype=np.int64)
    if chosen.size == 0:
        return out
    kind, workers = parallel.resolve_execution(executor, workers)
    streams = _streams(seed, chosen.size)
    stepper = _stepper(graph)
    tel = telemetry.current()
    with tel.span("markov.walk.first_hits"):
        tel.count("markov.walk.walks", int(chosen.size))
        if strategy == "sequential":
            steps_taken = 0
            for i in range(chosen.size):
                hit, consumed = _sequential_first_hit(
                    int(chosen[i]), streams[i], length, hit_mask, stepper
                )
                out[i] = hit
                steps_taken += consumed
            tel.count("markov.walk.steps", steps_taken)
            tel.count("markov.walk.absorbed", int(np.count_nonzero(out != NO_HIT)))
            return out
        chunks = resolve_chunks(chosen.size, chunk_size, workers)
        if parallel.use_processes(kind, workers, len(chunks)):
            mask_spec = parallel.share_array(hit_mask)
            out_spec, out_view = parallel.create_output(out.shape, np.int64)
            try:
                parallel.run_process_chunks(
                    _walk_process_chunk,
                    {
                        "graph": parallel.publish(graph),
                        "mode": "first_hits",
                        "length": length,
                        "mask": mask_spec,
                        "out": out_spec,
                    },
                    chunks,
                    workers,
                    chunk_payload=_walk_chunk_payload(chosen, streams),
                )
                return np.array(out_view)
            finally:
                parallel.release([mask_spec, out_spec])

        def run_chunk(columns: slice) -> None:
            with tel.span("markov.walk.chunk"):
                hits, steps_taken = _first_hits_chunk(
                    stepper, chosen[columns].copy(), streams[columns], length,
                    hit_mask,
                )
                out[columns] = hits
            tel.count("markov.walk.steps", steps_taken)
            tel.count(
                "markov.walk.absorbed", int(np.count_nonzero(hits != NO_HIT))
            )

        run_chunks(run_chunk, chunks, workers)
    return out


def _sequential_first_hit(
    source: int,
    stream: np.random.Generator,
    length: int,
    mask: np.ndarray,
    stepper: "_DenseStepper | _ShardedStepper",
) -> tuple[int, int]:
    """Per-walk oracle; returns ``(first_hit, steps consumed)``."""
    if mask[source]:
        return 0, 0
    state = source
    consumed = 0
    step = 0
    while step < length:
        count = min(_STEP_BLOCK, length - step)
        u = stream.random(count)
        for t in range(count):
            state = stepper.step(state, u[t])
            consumed += 1
            if mask[state]:
                return step + t + 1, consumed
        step += count
    return NO_HIT, consumed


# ----------------------------------------------------------------------
# mode (d): visit-count accumulation
# ----------------------------------------------------------------------
def walk_visit_counts(
    graph: Graph | ShardedGraph,
    sources: np.ndarray | Sequence[int],
    length: int,
    seed: _SeedLike = 0,
    record: str = "all",
    chunk_size: int | None = None,
    workers: int | None = None,
    strategy: str = "batched",
    executor: str | None = None,
) -> np.ndarray:
    """Accumulate per-node visit counts over one walk per source.

    ``record="all"`` counts every position (source included) of every
    walk — ``counts.sum() == len(sources) * (length + 1)``;
    ``record="last"`` counts endpoints only, which divided by the walk
    count is exactly the empirical ``length``-step distribution.
    Memory stays O(num_nodes) per chunk regardless of the sample count;
    chunk partial counts merge under a lock (integer addition commutes,
    so scheduling cannot change the totals).
    """
    chosen = _validate_sources(graph, sources)
    _validate_strategy(strategy)
    if length < 0:
        raise GraphError("length must be non-negative")
    if record not in ("all", "last"):
        raise GraphError(f"unknown record mode {record!r}; use 'all' or 'last'")
    counts = np.zeros(graph.num_nodes, dtype=np.int64)
    if chosen.size == 0:
        return counts
    kind, workers = parallel.resolve_execution(executor, workers)
    streams = _streams(seed, chosen.size)
    stepper = _stepper(graph)
    n = graph.num_nodes
    tel = telemetry.current()
    with tel.span("markov.walk.visit_counts"):
        tel.count("markov.walk.walks", int(chosen.size))
        if strategy == "sequential":
            for i in range(chosen.size):
                path = _sequential_trajectory(
                    int(chosen[i]), streams[i], length, stepper
                )
                if record == "last":
                    counts[path[-1]] += 1
                else:
                    counts += np.bincount(path, minlength=n)
            tel.count("markov.walk.steps", int(chosen.size) * length)
            return counts
        chunks = resolve_chunks(chosen.size, chunk_size, workers)
        if parallel.use_processes(kind, workers, len(chunks)):
            partials = parallel.run_process_chunks(
                _walk_process_chunk,
                {
                    "graph": parallel.publish(graph),
                    "mode": "visit",
                    "length": length,
                    "record": record,
                },
                chunks,
                workers,
                chunk_payload=_walk_chunk_payload(chosen, streams),
            )
            for local in partials:
                np.add(counts, local, out=counts)
            return counts

        merge_lock = threading.Lock()

        def run_chunk(columns: slice) -> None:
            with tel.span("markov.walk.chunk"):
                local = _visit_chunk(
                    stepper, chosen[columns].copy(), streams[columns], length,
                    record, n,
                )
                with merge_lock:
                    np.add(counts, local, out=counts)
            tel.count("markov.walk.steps", (columns.stop - columns.start) * length)

        run_chunks(run_chunk, chunks, workers)
    return counts


# ----------------------------------------------------------------------
# cover tracking (the Monte-Carlo cover-time estimator's kernel)
# ----------------------------------------------------------------------
def walk_cover_steps(
    graph: Graph | ShardedGraph,
    sources: np.ndarray | Sequence[int],
    max_steps: int,
    seed: _SeedLike = 0,
    chunk_size: int | None = None,
    workers: int | None = None,
    strategy: str = "batched",
    executor: str | None = None,
) -> np.ndarray:
    """Return per walk the step at which it has visited every node.

    Walks that do not cover the graph within ``max_steps`` report
    :data:`NO_HIT`.  Visited state is a ``(chunk, n)`` boolean block;
    a chunk stops stepping once all of its walks have covered.
    """
    chosen = _validate_sources(graph, sources)
    _validate_strategy(strategy)
    if max_steps < 1:
        raise GraphError("max_steps must be positive")
    out = np.empty(chosen.size, dtype=np.int64)
    if chosen.size == 0:
        return out
    kind, workers = parallel.resolve_execution(executor, workers)
    streams = _streams(seed, chosen.size)
    stepper = _stepper(graph)
    n = graph.num_nodes
    tel = telemetry.current()
    with tel.span("markov.walk.cover_steps"):
        tel.count("markov.walk.walks", int(chosen.size))
        if strategy == "sequential":
            for i in range(chosen.size):
                out[i] = _sequential_cover(
                    int(chosen[i]), streams[i], max_steps, n, stepper
                )
            tel.count("markov.walk.absorbed", int(np.count_nonzero(out != NO_HIT)))
            return out
        chunks = resolve_chunks(chosen.size, chunk_size, workers)
        if parallel.use_processes(kind, workers, len(chunks)):
            out_spec, out_view = parallel.create_output(out.shape, np.int64)
            try:
                parallel.run_process_chunks(
                    _walk_process_chunk,
                    {
                        "graph": parallel.publish(graph),
                        "mode": "cover",
                        "max_steps": max_steps,
                        "out": out_spec,
                    },
                    chunks,
                    workers,
                    chunk_payload=_walk_chunk_payload(chosen, streams),
                )
                return np.array(out_view)
            finally:
                parallel.release([out_spec])

        def run_chunk(columns: slice) -> None:
            with tel.span("markov.walk.chunk"):
                covered, steps_taken = _cover_chunk(
                    stepper, chosen[columns].copy(), streams[columns], max_steps, n
                )
                out[columns] = covered
            tel.count("markov.walk.steps", steps_taken)
            tel.count(
                "markov.walk.absorbed", int(np.count_nonzero(covered != NO_HIT))
            )

        run_chunks(run_chunk, chunks, workers)
    return out


def _sequential_cover(
    source: int,
    stream: np.random.Generator,
    max_steps: int,
    n: int,
    stepper: "_DenseStepper | _ShardedStepper",
) -> int:
    if n == 1:
        return 0
    visited = np.zeros(n, dtype=bool)
    visited[source] = True
    remaining = n - 1
    state = source
    step = 0
    while step < max_steps:
        count = min(_STEP_BLOCK, max_steps - step)
        u = stream.random(count)
        for t in range(count):
            state = stepper.step(state, u[t])
            if not visited[state]:
                visited[state] = True
                remaining -= 1
                if remaining == 0:
                    return step + t + 1
        step += count
    return NO_HIT
