"""Social-metric DTN routing (SimBet, Daly & Haahr — ref [2])."""

from repro.dtn.simbet import DeliveryStats, SimBetRouter, simulate_delivery

__all__ = ["SimBetRouter", "DeliveryStats", "simulate_delivery"]
