"""Social-metric routing for delay-tolerant networks (Daly & Haahr).

Reference [2] and the paper's third motivating application: in a DTN,
nodes meet intermittently (here: along the social graph's edges) and a
message should be handed to encountered nodes that are *socially better
placed* to reach the destination.  SimBet forwards on a utility mixing
two metrics computable from the social graph:

* **betweenness utility** — carriers with high betweenness centrality
  reach more of the graph;
* **similarity utility** — carriers sharing more neighbors with the
  destination are likely to meet it.

The simulator below plays contact rounds: each round every message
holder meets its social neighbors in random order and hands the message
to a neighbor with strictly higher SimBet utility toward the
destination.  Delivery ratio and hop counts against a flooding
upper bound and a random-forwarding baseline quantify how much the
social metrics buy — the experiment Daly & Haahr report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graph.centrality import betweenness_centrality
from repro.graph.core import Graph

__all__ = ["SimBetRouter", "DeliveryStats", "simulate_delivery"]


@dataclass(frozen=True)
class DeliveryStats:
    """Aggregate outcome of a routing simulation."""

    delivered: int
    total: int
    mean_hops: float
    mean_rounds: float

    @property
    def delivery_ratio(self) -> float:
        """Fraction of messages that reached their destination."""
        return self.delivered / max(self.total, 1)


class SimBetRouter:
    """SimBet utility routing over a social graph.

    Parameters
    ----------
    alpha:
        Weight of the betweenness utility; similarity gets
        ``1 - alpha``.  The original paper uses 0.5.
    betweenness_sources:
        Betweenness is exact when None; pass a count to sample sources
        on large graphs.
    """

    def __init__(
        self,
        graph: Graph,
        alpha: float = 0.5,
        betweenness_sources: int | None = None,
        seed: int = 0,
    ) -> None:
        if graph.num_nodes < 2:
            raise GraphError("routing needs at least 2 nodes")
        if not 0.0 <= alpha <= 1.0:
            raise GraphError("alpha must be in [0, 1]")
        self._graph = graph
        self._alpha = alpha
        rng = np.random.default_rng(seed)
        if betweenness_sources is not None:
            sources = rng.choice(
                graph.num_nodes,
                size=min(betweenness_sources, graph.num_nodes),
                replace=False,
            )
        else:
            sources = None
        raw = betweenness_centrality(graph, normalized=True, sources=sources)
        peak = raw.max()
        self._betweenness = raw / peak if peak > 0 else raw
        self._neighbor_sets = [
            set(graph.neighbors(v).tolist()) for v in range(graph.num_nodes)
        ]

    @property
    def graph(self) -> Graph:
        """The contact graph."""
        return self._graph

    def similarity(self, node: int, destination: int) -> float:
        """Return the normalized common-neighbor count."""
        if node == destination:
            return 1.0
        common = self._neighbor_sets[node] & self._neighbor_sets[destination]
        denom = len(self._neighbor_sets[destination])
        return len(common) / denom if denom else 0.0

    def utility(self, node: int, destination: int) -> float:
        """Return the SimBet utility of ``node`` for ``destination``."""
        return self._alpha * float(self._betweenness[node]) + (
            1 - self._alpha
        ) * self.similarity(node, destination)

    def next_hop(
        self, holder: int, destination: int, rng: np.random.Generator
    ) -> int | None:
        """Pick the encountered neighbor to hand the message to.

        Returns the destination immediately when encountered; otherwise
        the highest-utility neighbor that strictly improves on the
        holder, or None to keep carrying.
        """
        neighbors = self._graph.neighbors(holder)
        if neighbors.size == 0:
            return None
        if destination in self._neighbor_sets[holder]:
            return destination
        order = rng.permutation(neighbors)
        current = self.utility(holder, destination)
        best: int | None = None
        best_utility = current
        for candidate in order:
            candidate = int(candidate)
            u = self.utility(candidate, destination)
            if u > best_utility + 1e-12:
                best_utility = u
                best = candidate
        return best


def simulate_delivery(
    graph: Graph,
    num_messages: int = 100,
    max_rounds: int = 30,
    strategy: str = "simbet",
    alpha: float = 0.5,
    contacts_per_round: int = 3,
    stranger_probability: float = 0.1,
    seed: int = 0,
) -> DeliveryStats:
    """Simulate single-copy message delivery over DTN contact rounds.

    Contact model: each round the current message holder encounters
    ``contacts_per_round`` uniformly random *social neighbors* (with
    replacement), plus — with probability ``stranger_probability`` —
    one uniformly random node (the chance encounter that real mobility
    traces contain; without it every single-copy scheme deadlocks at
    its first local utility maximum).

    ``strategy`` decides what to do with the encounter set:

    * ``"simbet"`` — hand over to the highest-utility encounter that
      strictly improves on the holder;
    * ``"random"``  — hand over to a random encounter (baseline);
    * ``"direct"``  — never hand over (delivery only when the holder
      encounters the destination itself — the floor).

    A message is delivered the moment the destination is encountered.
    """
    if strategy not in ("simbet", "random", "direct"):
        raise GraphError("strategy must be 'simbet', 'random' or 'direct'")
    if num_messages < 1 or max_rounds < 1:
        raise GraphError("num_messages and max_rounds must be positive")
    if not 0.0 <= stranger_probability <= 1.0:
        raise GraphError("stranger_probability must be in [0, 1]")
    if contacts_per_round < 1:
        raise GraphError("contacts_per_round must be positive")
    rng = np.random.default_rng(seed)
    router = (
        SimBetRouter(graph, alpha=alpha, seed=seed) if strategy == "simbet" else None
    )
    delivered = 0
    hop_counts: list[int] = []
    round_counts: list[int] = []
    for _ in range(num_messages):
        source = int(rng.integers(graph.num_nodes))
        destination = int(rng.integers(graph.num_nodes))
        while destination == source:
            destination = int(rng.integers(graph.num_nodes))
        holder = source
        hops = 0
        for round_no in range(1, max_rounds + 1):
            encounters: list[int] = []
            nbrs = graph.neighbors(holder)
            if nbrs.size:
                picks = rng.integers(nbrs.size, size=contacts_per_round)
                encounters.extend(int(nbrs[i]) for i in set(picks.tolist()))
            if rng.random() < stranger_probability:
                stranger = int(rng.integers(graph.num_nodes))
                if stranger != holder:
                    encounters.append(stranger)
            if destination in encounters:
                delivered += 1
                hop_counts.append(hops + 1)
                round_counts.append(round_no)
                break
            if strategy == "direct" or not encounters:
                continue
            if strategy == "random":
                holder = encounters[rng.integers(len(encounters))]
                hops += 1
                continue
            assert router is not None
            current = router.utility(holder, destination)
            best = max(encounters, key=lambda e: router.utility(e, destination))
            if router.utility(best, destination) > current + 1e-12:
                holder = best
                hops += 1
    return DeliveryStats(
        delivered=delivered,
        total=num_messages,
        mean_hops=float(np.mean(hop_counts)) if hop_counts else 0.0,
        mean_rounds=float(np.mean(round_counts)) if round_counts else 0.0,
    )
