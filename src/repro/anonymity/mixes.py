"""Anonymous communication over social networks (Nagaraja, PETS 2007).

Reference [18] and the paper's second motivating application: a social
graph whose random walk mixes fast can host a mix network — relay a
message along a w-step random walk and the exit node is nearly
stationary-distributed, so an observer learns little about the sender.

The standard metrics, all computed from the walk's t-step distribution:

* **entropy anonymity** ``H(P_t)`` (Serjantov–Danezis): Shannon entropy
  of the exit distribution; its exponential is the *effective anonymity
  set size*;
* **normalized anonymity** ``H(P_t) / H(pi)``: 1.0 means the walk is as
  anonymous as the stationary mixer allows;
* **sender-anonymity TVD**: how far the adversary's posterior over exit
  nodes is from the stationary prior — identical to the paper's mixing
  measurement, which is exactly why mixing time is the right metric for
  this application.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graph.core import Graph
from repro.markov.transition import get_operator

__all__ = [
    "entropy",
    "AnonymityProfile",
    "walk_anonymity_profile",
    "anonymity_walk_length",
]


def entropy(distribution: np.ndarray) -> float:
    """Return the Shannon entropy (nats) of a probability vector."""
    p = np.asarray(distribution, dtype=float)
    if p.ndim != 1 or p.size == 0:
        raise GraphError("distribution must be a non-empty 1-D array")
    if not np.isclose(p.sum(), 1.0, atol=1e-6) or p.min() < -1e-12:
        raise GraphError("distribution must be non-negative and sum to 1")
    positive = p[p > 0]
    return float(-(positive * np.log(positive)).sum())


@dataclass(frozen=True)
class AnonymityProfile:
    """Anonymity metrics per walk length for sampled senders."""

    walk_lengths: np.ndarray
    mean_entropy: np.ndarray
    max_entropy: float
    mean_tvd: np.ndarray

    @property
    def normalized_entropy(self) -> np.ndarray:
        """Mean entropy relative to the stationary mixer's entropy."""
        return self.mean_entropy / self.max_entropy

    @property
    def effective_set_size(self) -> np.ndarray:
        """``exp(H)`` — the size of a uniform set with equal anonymity."""
        return np.exp(self.mean_entropy)


def walk_anonymity_profile(
    graph: Graph,
    walk_lengths: list[int],
    num_senders: int = 50,
    lazy: bool = True,
    seed: int = 0,
) -> AnonymityProfile:
    """Measure exit-node anonymity for walks of various lengths.

    For each sampled sender, evolve its delta distribution; record the
    entropy of the exit distribution and its TVD from stationary.  Lazy
    walks are the default (a mix relay can stay put), which also makes
    the metrics monotone.
    """
    lengths = np.asarray(walk_lengths, dtype=np.int64)
    if lengths.size == 0 or np.any(np.diff(lengths) <= 0) or lengths[0] < 0:
        raise GraphError("walk_lengths must be strictly increasing and >= 0")
    operator = get_operator(graph, lazy=lazy)
    pi = operator.stationary
    pi_entropy = entropy(pi)
    rng = np.random.default_rng(seed)
    count = min(num_senders, graph.num_nodes)
    senders = rng.choice(graph.num_nodes, size=count, replace=False)
    ent = np.zeros((count, lengths.size))
    tvd = np.zeros((count, lengths.size))
    # all senders evolve together on the batched walk engine
    block = operator.distribution_block(senders)
    step = 0
    for col, target in enumerate(lengths):
        block = operator.evolve_many(block, steps=int(target) - step)
        step = int(target)
        safe = np.where(block > 0, block, 1.0)  # log(1) = 0 kills zero terms
        ent[:, col] = -(block * np.log(safe)).sum(axis=0)
        tvd[:, col] = 0.5 * np.abs(np.subtract(block.T, pi, order="C")).sum(axis=1)
    return AnonymityProfile(
        walk_lengths=lengths,
        mean_entropy=ent.mean(axis=0),
        max_entropy=pi_entropy,
        mean_tvd=tvd.mean(axis=0),
    )


def anonymity_walk_length(
    graph: Graph,
    target_fraction: float = 0.9,
    max_length: int = 200,
    num_senders: int = 30,
    seed: int = 0,
) -> int | None:
    """Return the walk length achieving the target normalized entropy.

    The mix-route length a deployment must pay on this graph; None when
    ``max_length`` steps do not reach the target (slow mixer).
    """
    if not 0.0 < target_fraction <= 1.0:
        raise GraphError("target_fraction must be in (0, 1]")
    profile = walk_anonymity_profile(
        graph,
        list(range(1, max_length + 1)),
        num_senders=num_senders,
        seed=seed,
    )
    reached = np.flatnonzero(profile.normalized_entropy >= target_fraction)
    if reached.size == 0:
        return None
    return int(profile.walk_lengths[reached[0]])
