"""Anonymous communication on social mixers (Nagaraja, ref [18])."""

from repro.anonymity.mixes import (
    AnonymityProfile,
    anonymity_walk_length,
    entropy,
    walk_anonymity_profile,
)

__all__ = [
    "entropy",
    "AnonymityProfile",
    "walk_anonymity_profile",
    "anonymity_walk_length",
]
