"""Whānau: a Sybil-proof distributed hash table on a social graph.

Lesniewski-Laas and Kaashoek (NSDI 2010) — reference [10], and the
paper's example of using fast mixing for *communication* rather than
admission control.  The construction only uses one primitive: random
walks on the social graph.  On a fast-mixing graph a w-step walk from
an honest node lands on another honest node with probability
``1 - O(g w / m)``, so sampling tables by random walks yields mostly
honest entries no matter how many Sybil identities exist.

This is a faithful single-shot implementation of the routing core:

* **setup** — every node samples ``num_successors`` *successor records*
  (key/value pairs collected from walk endpoints) and, per layer,
  ``num_fingers`` *fingers* (walk endpoints annotated with their layer
  id).  Layer-0 ids are random keys from the node's sampled pool;
  layer-i ids are copied from a random layer-(i-1) finger — the layered
  id trick that defeats key-clustering attacks.
* **lookup** — to find a key, try each layer: pick the finger whose id
  most closely precedes the key on the ring, and scan that finger's
  successor records.  Retry over layers and repetitions.

Sybil nodes participate in the protocol but answer lookups adversarially
(they claim ignorance), so every routing step through a Sybil finger is
a wasted try — exactly the failure mode the walk-sampling bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SybilDefenseError
from repro.graph.core import Graph
from repro.markov.walk_batch import walk_endpoints

__all__ = ["WhanauConfig", "WhanauTables", "Whanau", "LookupResult"]

KEY_SPACE = 1 << 32


@dataclass(frozen=True)
class WhanauConfig:
    """Whānau parameters.

    The paper sets table sizes Theta(sqrt(km)) for k keys; here they are
    explicit knobs with sqrt-scaled defaults chosen at build time when
    left None.  ``walk_length`` defaults to ``ceil(2 log2 n)``, the
    mixing-time stand-in used throughout this library.
    """

    num_layers: int = 3
    num_fingers: int | None = None
    num_successors: int | None = None
    walk_length: int | None = None
    lookup_retries: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_layers < 1:
            raise SybilDefenseError("num_layers must be positive")
        if self.num_fingers is not None and self.num_fingers < 1:
            raise SybilDefenseError("num_fingers must be positive")
        if self.num_successors is not None and self.num_successors < 1:
            raise SybilDefenseError("num_successors must be positive")
        if self.lookup_retries < 1:
            raise SybilDefenseError("lookup_retries must be positive")


@dataclass
class WhanauTables:
    """One node's routing state."""

    ids: list[int] = field(default_factory=list)  # layer ids
    # fingers[layer] = list of (finger's layer id, finger node)
    fingers: list[list[tuple[int, int]]] = field(default_factory=list)
    # successor records: (key, owner node)
    successors: list[tuple[int, int]] = field(default_factory=list)


@dataclass(frozen=True)
class LookupResult:
    """Outcome of one lookup."""

    key: int
    source: int
    found_owner: int | None
    tries: int

    @property
    def success(self) -> bool:
        """True when the correct owner was located."""
        return self.found_owner is not None


def _ring_distance(from_id: int, to_key: int) -> int:
    """Clockwise distance from ``from_id`` to ``to_key`` on the ring."""
    return (to_key - from_id) % KEY_SPACE


class Whanau:
    """A Whānau overlay built over a social graph.

    Parameters
    ----------
    graph:
        The social graph (possibly under Sybil attack).
    keys:
        ``keys[v]`` is the list of keys node v owns and serves.
    honest:
        Boolean mask; Sybil nodes (False) follow the protocol during
        setup (their structure is adversary-chosen anyway) but answer
        every lookup query with "unknown".
    """

    def __init__(
        self,
        graph: Graph,
        keys: dict[int, list[int]],
        honest: np.ndarray | None = None,
        config: WhanauConfig | None = None,
    ) -> None:
        if graph.num_nodes < 3:
            raise SybilDefenseError("Whanau needs at least 3 nodes")
        self._graph = graph
        self._config = config or WhanauConfig()
        self._honest = (
            np.ones(graph.num_nodes, dtype=bool) if honest is None else honest
        )
        if self._honest.shape != (graph.num_nodes,):
            raise SybilDefenseError("honest mask must cover every node")
        self._keys = {int(v): sorted(ks) for v, ks in keys.items()}
        self._owner: dict[int, int] = {}
        for v, ks in self._keys.items():
            for k in ks:
                self._owner[int(k)] = v
        total_keys = sum(len(ks) for ks in self._keys.values())
        if total_keys == 0:
            raise SybilDefenseError("at least one key must be stored")
        n = graph.num_nodes
        cfg = self._config
        scale = max(int(np.ceil(np.sqrt(total_keys))), 4)
        self._num_fingers = cfg.num_fingers or scale
        self._num_successors = cfg.num_successors or scale
        self._walk_length = cfg.walk_length or max(2, int(np.ceil(2 * np.log2(n))))
        self._rng = np.random.default_rng(cfg.seed)
        # every walk-sampling stage draws its engine seed from this
        # root (spawn counter advances deterministically), keeping
        # table construction reproducible while each stage's walks run
        # as one vectorized block
        self._walk_seed_root = np.random.SeedSequence(cfg.seed)
        self._tables: list[WhanauTables] = [WhanauTables() for _ in range(n)]
        self._setup()

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The underlying social graph."""
        return self._graph

    @property
    def walk_length(self) -> int:
        """Sampling walk length w."""
        return self._walk_length

    def tables(self, node: int) -> WhanauTables:
        """Return a node's routing tables (read-mostly)."""
        return self._tables[node]

    # ------------------------------------------------------------------
    def _sample_block(self, sources: np.ndarray) -> np.ndarray:
        """Endpoints of one w-step walk per source, as one engine block."""
        return walk_endpoints(
            self._graph,
            sources,
            self._walk_length,
            seed=self._walk_seed_root.spawn(1)[0],
        )

    def _sample_uniform_block(
        self, sources: np.ndarray, attempts: int = 16
    ) -> np.ndarray:
        """Walk-sample one peer per source, rejection-corrected toward uniform.

        Raw walk endpoints are degree biased (stationary ~ deg/2m), so
        keys owned by peripheral nodes would be under-represented in
        every database at once — correlated lookup misses.  Accepting an
        endpoint v with probability min-degree/deg(v) (the standard
        Metropolis correction used in social-graph sampling) restores a
        near-uniform key sample while still only using random walks.
        Each rejection round resamples every still-unaccepted source in
        one block; a source never accepted keeps its last attempt.
        """
        sources = np.asarray(sources, dtype=np.int64)
        degrees = self._graph.degrees
        floor = max(int(degrees[degrees > 0].min()), 1)
        result = sources.copy()
        active = np.arange(result.size)
        for _ in range(attempts):
            if active.size == 0:
                break
            peers = self._sample_block(sources[active])
            result[active] = peers
            accepted = self._rng.random(active.size) < floor / np.maximum(
                degrees[peers], 1
            )
            active = active[~accepted]
        return result

    def _closest_following(
        self, records: list[tuple[int, int]], anchor: int, count: int
    ) -> list[tuple[int, int]]:
        """Keep the ``count`` records closest-following ``anchor`` on the ring."""
        unique = sorted(set(records), key=lambda r: _ring_distance(anchor, r[0]))
        return sorted(unique[:count])

    def _setup(self) -> None:
        """Build successor tables (two aggregation rounds), ids, fingers."""
        n = self._graph.num_nodes
        # round 0: everyone knows the keys it owns
        stage: list[list[tuple[int, int]]] = [
            [(k, v) for k in self._keys.get(v, ())] for v in range(n)
        ]
        # layer-0 ids: a random key from a first batch of sampled peers
        # (one engine block covers every node's batch)
        all_keys = sorted(self._owner)
        nodes = np.arange(n, dtype=np.int64)
        id_peers = self._sample_block(
            np.repeat(nodes, self._num_successors)
        ).reshape(n, self._num_successors)
        for v in range(n):
            pool: list[int] = []
            for peer in id_peers[v]:
                pool.extend(self._keys.get(int(peer), ()))
            if not pool:
                pool = all_keys
            self._tables[v].ids = [int(pool[self._rng.integers(len(pool))])]
        # phase 1 — databases: every node collects the keys owned by
        # 2 * num_successors walk-sampled peers.  db(v) is a UNIFORM
        # random sample of the key space (this uniformity is load-
        # bearing: concentrated databases would starve distant queriers).
        db_peers = self._sample_uniform_block(
            np.repeat(nodes, 2 * self._num_successors)
        ).reshape(n, 2 * self._num_successors)
        databases: list[list[tuple[int, int]]] = []
        for v in range(n):
            records: list[tuple[int, int]] = []
            for peer in db_peers[v]:
                peer = int(peer)
                if self._honest[peer]:
                    records.extend(stage[peer])
            databases.append(sorted(set(records)))
        # phase 2 — successor tables: sample fresh peers and pull from
        # each peer's database the few records nearest-following our
        # id.  The union over many independent uniform samples is DENSE
        # in the ring segment right after our id, which is exactly what
        # the closest-preceding-finger routing step relies on.
        per_peer = 4
        table_cap = 6 * self._num_successors
        succ_peers = self._sample_block(
            np.repeat(nodes, 2 * self._num_successors)
        ).reshape(n, 2 * self._num_successors)
        for v in range(n):
            anchor = self._tables[v].ids[0]
            records = list(databases[v])
            for peer in succ_peers[v]:
                peer = int(peer)
                if not self._honest[peer]:
                    continue
                nearest = sorted(
                    databases[peer],
                    key=lambda r: _ring_distance(anchor, r[0]),
                )[:per_peer]
                records.extend(nearest)
            self._tables[v].successors = self._closest_following(
                records, anchor, table_cap
            )
        # 3. fingers, layer by layer; layer-i ids copy a random
        #    layer-(i-1) finger's id
        for layer in range(self._config.num_layers):
            finger_peers = self._sample_block(
                np.repeat(nodes, self._num_fingers)
            ).reshape(n, self._num_fingers)
            for v in range(n):
                fingers: list[tuple[int, int]] = []
                for peer in finger_peers[v]:
                    peer = int(peer)
                    peer_ids = self._tables[peer].ids
                    if layer < len(peer_ids):
                        fingers.append((int(peer_ids[layer]), peer))
                self._tables[v].fingers.append(sorted(fingers))
            if layer + 1 < self._config.num_layers:
                for v in range(n):
                    fingers = self._tables[v].fingers[layer]
                    if fingers:
                        pick = fingers[self._rng.integers(len(fingers))][0]
                    else:
                        pick = self._tables[v].ids[0]
                    self._tables[v].ids.append(int(pick))

    # ------------------------------------------------------------------
    def _query_successors(self, node: int, key: int) -> int | None:
        """Ask ``node`` for the key; Sybils always claim ignorance."""
        if not self._honest[node]:
            return None
        for stored_key, owner in self._tables[node].successors:
            if stored_key == key:
                return owner
        return None

    def lookup(self, source: int, key: int) -> LookupResult:
        """Locate ``key``'s owner starting from ``source``.

        Tries every layer per retry round: choose the finger whose layer
        id most closely precedes the key on the ring, query its
        successor table, fall back to random fingers on later retries.
        """
        self._graph._check_node(source)
        if key not in self._owner:
            raise SybilDefenseError(f"key {key} is not stored anywhere")
        tries = 0
        # a node can always answer from its own successor records
        direct = self._query_successors(source, key) if self._honest[source] else None
        if direct is not None:
            return LookupResult(key=key, source=source, found_owner=direct, tries=0)
        for attempt in range(self._config.lookup_retries):
            for layer in range(self._config.num_layers):
                fingers = self._tables[source].fingers[layer]
                if not fingers:
                    continue
                if attempt == 0:
                    # the three fingers whose ids most closely precede
                    # the key: their dense segments should cover it
                    candidates = [
                        f[1]
                        for f in sorted(
                            fingers, key=lambda f: _ring_distance(f[0], key)
                        )[:3]
                    ]
                else:
                    candidates = [
                        fingers[self._rng.integers(len(fingers))][1]
                    ]
                for candidate in candidates:
                    tries += 1
                    owner = self._query_successors(candidate, key)
                    if owner is not None and owner == self._owner[key]:
                        return LookupResult(
                            key=key, source=source, found_owner=owner, tries=tries
                        )
        return LookupResult(key=key, source=source, found_owner=None, tries=tries)

    def lookup_success_rate(
        self,
        num_lookups: int = 200,
        sources: np.ndarray | None = None,
        seed: int = 0,
    ) -> float:
        """Measure the fraction of successful honest-node lookups."""
        if num_lookups < 1:
            raise SybilDefenseError("num_lookups must be positive")
        rng = np.random.default_rng(seed)
        honest_nodes = np.flatnonzero(self._honest)
        pool = honest_nodes if sources is None else np.asarray(sources)
        keys = sorted(self._owner)
        hits = 0
        for _ in range(num_lookups):
            source = int(pool[rng.integers(pool.size)])
            key = int(keys[rng.integers(len(keys))])
            if self.lookup(source, key).success:
                hits += 1
        return hits / num_lookups
