"""Sybil-proof DHT routing on social graphs (Whānau, ref [10])."""

from repro.dht.whanau import LookupResult, Whanau, WhanauConfig, WhanauTables

__all__ = ["Whanau", "WhanauConfig", "WhanauTables", "LookupResult"]
