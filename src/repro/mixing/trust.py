"""Trust-modulated random walks (Mohaisen, Hopper, Kim — INFOCOM 2011).

The paper observes (Section II) that mixing patterns track the trust
model of the underlying network, and cites the companion work that
*accounts for trust* in Sybil defenses by modulating the random walk:
instead of always moving, a walker at node v stays put with a per-node
"trust strictness" probability, modelling that strict-trust nodes are
reluctant to forward.  Formally,

    P'(v, v) = alpha_v
    P'(v, u) = (1 - alpha_v) / deg(v)    for u adjacent to v

With uniform alpha this is the alpha-lazy chain, whose spectral gap
shrinks by exactly (1 - alpha) — i.e. modulated defenses must lengthen
their walks by 1/(1 - alpha) to keep the same end-to-end guarantees.
This module builds modulated operators and measures that cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphError
from repro.graph.core import Graph
from repro.markov.batch import batched_tvd_profile, delta_block, evolve_block
from repro.markov.transition import get_operator

__all__ = [
    "modulated_transition_matrix",
    "ModulatedOperator",
    "modulated_mixing_profile",
    "mixing_cost_of_trust",
]


def modulated_transition_matrix(
    graph: Graph, trust: float | np.ndarray
) -> sp.csr_matrix:
    """Return the trust-modulated transition matrix P'.

    ``trust`` is either one stay-probability for every node or a length-n
    array of per-node values in [0, 1).
    """
    n = graph.num_nodes
    alphas = np.full(n, float(trust)) if np.isscalar(trust) else np.asarray(
        trust, dtype=float
    )
    if alphas.shape != (n,):
        raise GraphError(f"trust must be scalar or an array of length {n}")
    if alphas.min() < 0.0 or alphas.max() >= 1.0:
        raise GraphError("trust values must lie in [0, 1)")
    base = get_operator(graph).matrix
    move = sp.diags(1.0 - alphas) @ base
    stay = sp.diags(alphas)
    return (move + stay).tocsr()


@dataclass(frozen=True)
class ModulatedOperator:
    """A trust-modulated chain with cached matrix and stationary dist.

    For uniform trust the stationary distribution is unchanged (the
    chain is a lazy version of the same reversible walk); for per-node
    trust it is re-derived from the detailed-balance weights
    ``deg(v) / (1 - alpha_v)``.
    """

    graph: Graph
    trust: np.ndarray
    matrix: sp.csr_matrix
    stationary: np.ndarray

    @classmethod
    def build(cls, graph: Graph, trust: float | np.ndarray) -> "ModulatedOperator":
        n = graph.num_nodes
        alphas = (
            np.full(n, float(trust)) if np.isscalar(trust) else np.asarray(trust, float)
        )
        matrix = modulated_transition_matrix(graph, alphas)
        degrees = graph.degrees.astype(float)
        weights = np.zeros(n)
        positive = degrees > 0
        weights[positive] = degrees[positive] / (1.0 - alphas[positive])
        if weights.sum() == 0:
            raise GraphError("modulated chain needs at least one edge")
        pi = weights / weights.sum()
        return cls(graph=graph, trust=alphas, matrix=matrix, stationary=pi)

    def distribution_after(self, source: int, steps: int) -> np.ndarray:
        """Evolve a delta distribution for ``steps`` modulated steps."""
        self.graph._check_node(source)
        if steps < 0:
            raise GraphError("steps must be non-negative")
        dist = np.zeros(self.graph.num_nodes)
        dist[source] = 1.0
        for _ in range(steps):
            dist = self.matrix.T @ dist
        return dist

    def distribution_block(self, sources: np.ndarray | list[int]) -> np.ndarray:
        """Return the ``(n, s)`` block of delta distributions at ``sources``."""
        return delta_block(self.graph.num_nodes, sources)

    def evolve_many(self, block: np.ndarray, steps: int = 1) -> np.ndarray:
        """Advance every column of ``block`` by ``steps`` modulated steps."""
        return evolve_block(self.matrix, block, steps)


def modulated_mixing_profile(
    graph: Graph,
    trust: float | np.ndarray,
    walk_lengths: list[int],
    num_sources: int = 50,
    seed: int = 0,
    chunk_size: int | None = None,
    workers: int | None = None,
) -> np.ndarray:
    """Return mean TVD-to-stationary per walk length under modulation.

    The modulated analog of the Figure-1 measurement, run on the
    batched walk engine (``chunk_size``/``workers`` as in
    :func:`repro.mixing.sampled_mixing_profile`).
    """
    operator = ModulatedOperator.build(graph, trust)
    rng = np.random.default_rng(seed)
    count = min(num_sources, graph.num_nodes)
    sources = rng.choice(graph.num_nodes, size=count, replace=False)
    tvd = batched_tvd_profile(
        operator.matrix,
        operator.stationary,
        sources,
        walk_lengths,
        chunk_size=chunk_size,
        workers=workers,
    )
    return tvd.mean(axis=0)


def mixing_cost_of_trust(
    graph: Graph,
    trust_levels: list[float],
    epsilon: float = 0.1,
    max_length: int = 400,
    num_sources: int = 30,
    seed: int = 0,
) -> dict[float, int | None]:
    """Measure the walk length needed to reach ``epsilon`` TVD per trust level.

    Returns ``{alpha: T_alpha}`` with None when the chain has not mixed
    within ``max_length`` steps.  Theory predicts
    ``T_alpha ~ T_0 / (1 - alpha)``.
    """
    lengths = list(range(1, max_length + 1))
    out: dict[float, int | None] = {}
    for alpha in trust_levels:
        means = modulated_mixing_profile(
            graph, alpha, lengths, num_sources=num_sources, seed=seed
        )
        below = np.flatnonzero(means < epsilon)
        out[alpha] = int(lengths[below[0]]) if below.size else None
    return out
