"""Sampled mixing-time measurement (the paper's Figure 1 method).

Instead of summarizing the whole graph by the single poorest-mixing
source (which is what the SLEM bound captures), the sampling method of
Mohaisen et al. (IMC 2010) picks random source vertices, evolves the
delta distribution at each source for ``t = 1, 2, ...`` steps, and
records the total variation distance to the stationary distribution.
Figure 1 plots the mean TVD across sources against walk length.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError
from repro.graph.core import Graph
from repro.markov.batch import validate_walk_lengths
from repro.markov.distance import total_variation_distance
from repro.markov.transition import TransitionOperator, get_operator

__all__ = [
    "MixingProfile",
    "sampled_mixing_profile",
    "mixing_time_from_profile",
    "sampled_mixing_time",
    "is_fast_mixing",
]


@dataclass(frozen=True)
class MixingProfile:
    """TVD-vs-walk-length measurement over sampled sources.

    Attributes
    ----------
    walk_lengths:
        The evaluated walk lengths ``t`` (ascending).
    sources:
        The sampled source vertices.
    tvd:
        Matrix of shape ``(len(sources), len(walk_lengths))``;
        ``tvd[s, t]`` is the TVD of source ``s``'s ``walk_lengths[t]``-step
        distribution from stationary.
    """

    walk_lengths: np.ndarray
    sources: np.ndarray
    tvd: np.ndarray
    lazy: bool = field(default=False)

    @property
    def mean(self) -> np.ndarray:
        """Mean TVD per walk length across sources (the Figure-1 curve)."""
        return self.tvd.mean(axis=0)

    @property
    def max(self) -> np.ndarray:
        """Worst-source TVD per walk length (the Eq.-2 maximization)."""
        return self.tvd.max(axis=0)

    @property
    def min(self) -> np.ndarray:
        """Best-source TVD per walk length."""
        return self.tvd.min(axis=0)

    def percentile(self, q: float) -> np.ndarray:
        """Return the ``q``-th percentile TVD per walk length."""
        return np.percentile(self.tvd, q, axis=0)


def _sequential_tvd(
    operator: TransitionOperator, sources: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """One-source-at-a-time oracle: a sparse matvec per source per step.

    Kept as the reference implementation the batched engine is tested
    against (``strategy="sequential"``).
    """
    pi = operator.stationary
    tvd = np.empty((sources.size, lengths.size))
    for row, source in enumerate(sources):
        dist = operator.delta(int(source))
        step = 0
        for col, target in enumerate(lengths):
            while step < target:
                dist = operator.evolve(dist)
                step += 1
            tvd[row, col] = total_variation_distance(dist, pi)
    return tvd


def sampled_mixing_profile(
    graph: Graph,
    walk_lengths: np.ndarray | list[int] | None = None,
    num_sources: int = 100,
    sources: np.ndarray | list[int] | None = None,
    lazy: bool = False,
    seed: int = 0,
    strategy: str = "batched",
    chunk_size: int | None = None,
    workers: int | None = None,
) -> MixingProfile:
    """Measure TVD-to-stationary for sampled sources and walk lengths.

    Parameters
    ----------
    graph:
        Graph to measure; should be connected (use the LCC otherwise).
    walk_lengths:
        Walk lengths to record, strictly increasing.  Defaults to
        ``1 .. 50`` (the x-range of the paper's Figure 1).  Length ``0``
        is allowed and records the TVD of the source delta itself.
    num_sources:
        Number of uniformly sampled sources when ``sources`` is None.
        The paper uses 100 random sources.
    sources:
        Explicit source list, overriding sampling.  Sources are sorted
        before evolution so ``tvd`` rows always align with the
        ``sources`` attribute of the returned profile.
    lazy:
        Evolve the lazy chain ``(I + P)/2`` instead of P.
    strategy:
        ``"batched"`` (default) evolves all sources as dense column
        blocks in single sparse x dense products;  ``"sequential"`` is
        the one-matvec-per-source oracle.  Both produce byte-identical
        TVD matrices.
    chunk_size:
        Batched only: columns evolved per block, bounding memory at
        ``O(n * chunk_size)``.
    workers:
        Batched only: fan independent source chunks out over a thread
        pool of this size.
    """
    if graph.num_nodes < 2:
        raise GraphError("mixing measurement needs at least 2 nodes")
    lengths = validate_walk_lengths(
        np.arange(1, 51, dtype=np.int64) if walk_lengths is None else walk_lengths
    )
    rng = np.random.default_rng(seed)
    if sources is None:
        count = min(num_sources, graph.num_nodes)
        chosen = rng.choice(graph.num_nodes, size=count, replace=False)
    else:
        chosen = np.asarray(list(sources), dtype=np.int64)
        if chosen.size == 0:
            raise GraphError("sources must be non-empty")
    chosen = np.sort(chosen)
    operator = get_operator(graph, lazy=lazy)
    if strategy == "batched":
        tvd = operator.tvd_profile(
            chosen, lengths, chunk_size=chunk_size, workers=workers
        )
    elif strategy == "sequential":
        tvd = _sequential_tvd(operator, chosen, lengths)
    else:
        raise GraphError(f"unknown strategy {strategy!r}")
    return MixingProfile(walk_lengths=lengths, sources=chosen, tvd=tvd, lazy=lazy)


def mixing_time_from_profile(
    profile: MixingProfile, epsilon: float, aggregate: str = "max"
) -> int | None:
    """Return the smallest measured walk length with TVD below ``epsilon``.

    ``aggregate`` picks the curve: ``"max"`` matches Eq. (2)'s worst
    source, ``"mean"`` the average-source curve of Figure 1.  Returns
    None when no measured length achieves the threshold.
    """
    if aggregate == "max":
        curve = profile.max
    elif aggregate == "mean":
        curve = profile.mean
    elif aggregate == "min":
        curve = profile.min
    else:
        raise GraphError(f"unknown aggregate {aggregate!r}")
    below = np.flatnonzero(curve < epsilon)
    if below.size == 0:
        return None
    return int(profile.walk_lengths[below[0]])


def sampled_mixing_time(
    graph: Graph,
    epsilon: float | None = None,
    max_length: int = 200,
    num_sources: int = 100,
    lazy: bool = False,
    seed: int = 0,
    strategy: str = "batched",
    chunk_size: int | None = None,
    workers: int | None = None,
) -> int | None:
    """Estimate ``T(eps)`` by the sampling method.

    ``epsilon`` defaults to ``1/n``.  Returns None when the chain has
    not mixed within ``max_length`` steps (a slow-mixing verdict at this
    scale).  ``strategy``/``chunk_size``/``workers`` select the batched
    walk engine exactly as in :func:`sampled_mixing_profile`.
    """
    eps = 1.0 / graph.num_nodes if epsilon is None else epsilon
    profile = sampled_mixing_profile(
        graph,
        walk_lengths=np.arange(1, max_length + 1),
        num_sources=num_sources,
        lazy=lazy,
        seed=seed,
        strategy=strategy,
        chunk_size=chunk_size,
        workers=workers,
    )
    return mixing_time_from_profile(profile, eps, aggregate="max")


def is_fast_mixing(
    graph: Graph,
    constant: float = 4.0,
    num_sources: int = 50,
    seed: int = 0,
    strategy: str = "batched",
) -> bool:
    """Classify the graph as fast mixing per the O(log n) criterion.

    Checks whether the sampled worst-source mixing time at
    ``eps = 1/n`` is at most ``constant * log2(n)``.  The budget is
    clamped to at least one step so tiny graphs (where
    ``constant * log2(n)`` truncates to 0) still measure a one-step
    walk instead of crashing on an empty length grid.
    """
    budget = max(1, int(constant * np.log2(max(graph.num_nodes, 2))))
    measured = sampled_mixing_time(
        graph, max_length=budget, num_sources=num_sources, seed=seed, strategy=strategy
    )
    return measured is not None
