"""Spectral mixing-time machinery: SLEM and the Sinclair bounds.

The paper's Table I reports the second largest eigenvalue (modulus) of
each graph's transition matrix, and Section III-C uses Sinclair's result

    (mu / (1 - mu)) * log(1 / (2 eps))  <=  T(eps)
    T(eps)  <=  (log n + log(1 / eps)) / (1 - mu)

to bound the mixing time from mu.  Because P is similar to the symmetric
normalized adjacency ``D^{-1/2} A D^{-1/2}``, its spectrum is real; the
SLEM is the second largest eigenvalue in absolute value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import ConvergenceError, GraphError
from repro.graph.core import Graph
from repro.graph.shard import ShardedGraph

__all__ = [
    "normalized_adjacency",
    "power_iteration_slem",
    "slem",
    "spectral_gap",
    "MixingBounds",
    "sinclair_bounds",
    "spectral_mixing_time",
]


def normalized_adjacency(graph: Graph) -> sp.csr_matrix:
    """Return ``D^{-1/2} A D^{-1/2}`` as a scipy CSR matrix.

    Shares P's eigenvalues (similarity transform by ``D^{1/2}``) while
    being symmetric, which lets us use Lanczos iteration.
    """
    n = graph.num_nodes
    if n == 0:
        raise GraphError("normalized adjacency of an empty graph is undefined")
    degrees = graph.degrees.astype(float)
    inv_sqrt = np.zeros(n)
    nonzero = degrees > 0
    inv_sqrt[nonzero] = 1.0 / np.sqrt(degrees[nonzero])
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
    data = inv_sqrt[src] * inv_sqrt[graph.indices]
    return sp.csr_matrix((data, graph.indices.copy(), graph.indptr.copy()), shape=(n, n))


def _dense_slem(matrix: sp.csr_matrix) -> float:
    values = np.linalg.eigvalsh(matrix.toarray())
    magnitudes = np.sort(np.abs(values))[::-1]
    return float(magnitudes[1]) if magnitudes.size > 1 else 0.0


def _normalized_apply(graph: Graph | ShardedGraph):
    """Return ``(apply, degrees)`` for matvecs against ``D^{-1/2}AD^{-1/2}``.

    For a resident graph the operator is one CSR matrix; for a
    :class:`~repro.graph.shard.ShardedGraph` each shard's normalized
    row block multiplies the vector independently into its own output
    rows, so the matvec streams without a global matrix.
    """
    degrees = graph.degrees.astype(float)
    if isinstance(graph, ShardedGraph):
        inv_sqrt = np.zeros(degrees.size)
        nonzero = degrees > 0
        inv_sqrt[nonzero] = 1.0 / np.sqrt(degrees[nonzero])

        def apply(x: np.ndarray) -> np.ndarray:
            out = np.empty_like(x)
            for shard in graph.iter_shards():
                out[shard.lo : shard.hi] = shard.normalized_rows(inv_sqrt).dot(x)
            return out

        return apply, degrees
    matrix = normalized_adjacency(graph)
    return matrix.dot, degrees


def power_iteration_slem(
    graph: Graph | ShardedGraph,
    tol: float = 1e-12,
    max_iterations: int = 5000,
    seed: int = 0,
    check_connected: bool = True,
) -> float:
    """Estimate the SLEM by deflated power iteration on ``M**2``.

    ``M = D^{-1/2} A D^{-1/2}`` is symmetric with leading eigenvector
    ``sqrt(deg)`` at eigenvalue 1; deflating that direction and
    iterating the *squared* operator (two matvecs per iteration) makes
    the dominant surviving eigenvalue ``slem**2`` regardless of whether
    the extreme eigenvalue is positive or negative (near-bipartite
    chains), with the Rayleigh quotient as the estimate.  Only matvecs
    are needed, so the same code runs a resident graph or streams a
    :class:`~repro.graph.shard.ShardedGraph` shard block by shard
    block — the out-of-core replacement for the dense/Lanczos paths of
    :func:`slem`.

    Raises :class:`~repro.errors.ConvergenceError` when the Rayleigh
    estimate has not stabilized to ``tol`` within ``max_iterations``.
    ``check_connected=False`` skips the (BFS) connectivity precheck
    when the caller has already established it.

    Tolerance at scale: large streamed analogs tend to carry a
    near-degenerate subdominant eigenvalue cluster, against which the
    successive-difference test tightens only sub-geometrically — the
    default ``tol=1e-12`` may then exhaust ``max_iterations`` even
    though the SLEM estimate is already accurate to ~1e-5.  Callers
    reporting mixing numbers for million-node graphs should pass
    ``tol=1e-8`` (or looser); the tight default is for small graphs
    compared against the dense solver.
    """
    n = graph.num_nodes
    if n < 2:
        raise GraphError("SLEM needs at least 2 nodes")
    if check_connected:
        _check_connected(graph)
    apply, degrees = _normalized_apply(graph)
    leading = np.sqrt(degrees)
    leading /= np.linalg.norm(leading)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    x -= (leading @ x) * leading
    norm = np.linalg.norm(x)
    if norm == 0.0:  # astronomically unlikely; retry deterministically
        x = rng.standard_normal(n)
        x -= (leading @ x) * leading
        norm = np.linalg.norm(x)
    x /= norm
    previous = None
    for _ in range(max_iterations):
        y = apply(apply(x))
        y -= (leading @ y) * leading
        estimate = float(x @ y)  # Rayleigh quotient for M^2 (x is unit)
        norm = np.linalg.norm(y)
        if norm <= 1e-300:
            # the deflated spectrum is numerically zero (e.g. a star's
            # nontrivial eigenvalues are +-1 collapsing under deflation)
            return float(np.sqrt(max(estimate, 0.0)))
        x = y / norm
        if previous is not None and abs(estimate - previous) <= tol * max(
            abs(estimate), 1e-30
        ):
            return float(min(np.sqrt(max(estimate, 0.0)), 1.0))
        previous = estimate
    raise ConvergenceError(
        f"power iteration did not converge within {max_iterations} iterations"
    )


def _check_connected(graph: Graph | ShardedGraph) -> None:
    """Reject disconnected graphs with the standard mixing error."""
    if isinstance(graph, ShardedGraph):
        from repro.graph.bfs_batch import bfs_distances_block

        reached = bfs_distances_block(graph, [0])[0]
        connected = bool((reached >= 0).all())
    else:
        from repro.graph.traversal import is_connected

        connected = is_connected(graph)
    if not connected:
        raise GraphError(
            "graph is disconnected: the walk cannot mix across components "
            "(eigenvalue 1 is repeated, so the SLEM is 1 and every mixing "
            "bound is infinite); take the largest connected component first"
        )


def slem(
    graph: Graph | ShardedGraph, tol: float = 1e-10, dense_threshold: int = 400
) -> float:
    """Return the second largest eigenvalue modulus of P.

    Small graphs are solved densely; larger ones via Lanczos on the
    normalized adjacency (asking for the three largest-magnitude
    eigenvalues and discarding the leading 1).  A
    :class:`~repro.graph.shard.ShardedGraph` never materializes a
    matrix: it dispatches to :func:`power_iteration_slem`, which
    streams shard-block matvecs.

    Disconnected graphs are rejected up front: eigenvalue 1 has one
    multiplicity per component, so the "second" eigenvalue is a
    (numerically duplicated) 1 and every finite mixing bound downstream
    would fail with an unhelpful range error.  Measure the largest
    connected component instead
    (:func:`repro.graph.ops.largest_connected_component`).
    """
    if graph.num_nodes < 2:
        raise GraphError("SLEM needs at least 2 nodes")
    if isinstance(graph, ShardedGraph):
        return power_iteration_slem(graph, tol=min(tol, 1e-12))
    _check_connected(graph)
    matrix = normalized_adjacency(graph)
    n = graph.num_nodes
    if n <= dense_threshold:
        return _dense_slem(matrix)
    try:
        values = spla.eigsh(
            matrix, k=3, which="LM", return_eigenvectors=False, tol=tol
        )
    except (spla.ArpackNoConvergence, spla.ArpackError) as exc:
        raise ConvergenceError(f"Lanczos failed to converge: {exc}") from exc
    magnitudes = np.sort(np.abs(values))[::-1]
    # the leading eigenvalue of a connected graph is exactly 1; the next
    # magnitude is the SLEM (clip numerical overshoot just above 1).
    return float(min(magnitudes[1], 1.0))


def spectral_gap(graph: Graph, **kwargs: float) -> float:
    """Return ``1 - slem(graph)``, the spectral gap of the chain."""
    return 1.0 - slem(graph, **kwargs)


@dataclass(frozen=True)
class MixingBounds:
    """Sinclair lower/upper bounds on T(eps) computed from the SLEM."""

    slem: float
    epsilon: float
    num_nodes: int
    lower: float
    upper: float


def sinclair_bounds(mu: float, num_nodes: int, epsilon: float) -> MixingBounds:
    """Return the Sinclair bounds on ``T(eps)`` given SLEM ``mu``.

    Raises for degenerate inputs (``mu >= 1`` means no spectral gap and
    an unbounded chain — a disconnected or bipartite graph).
    """
    if not 0.0 <= mu < 1.0:
        raise GraphError("SLEM must lie in [0, 1) for finite mixing bounds")
    if not 0.0 < epsilon < 1.0:
        raise GraphError("epsilon must lie in (0, 1)")
    if num_nodes < 2:
        raise GraphError("num_nodes must be at least 2")
    gap = 1.0 - mu
    lower = (mu / gap) * math.log(1.0 / (2.0 * epsilon))
    upper = (math.log(num_nodes) + math.log(1.0 / epsilon)) / gap
    return MixingBounds(
        slem=mu, epsilon=epsilon, num_nodes=num_nodes, lower=max(lower, 0.0), upper=upper
    )


def spectral_mixing_time(
    graph: Graph, epsilon: float | None = None, **slem_kwargs: float
) -> MixingBounds:
    """Measure SLEM then return Sinclair bounds.

    ``epsilon`` defaults to ``1/n``, the fast-mixing threshold scale
    used throughout the paper (``eps = Theta(1/n)``).
    """
    eps = 1.0 / graph.num_nodes if epsilon is None else epsilon
    mu = slem(graph, **slem_kwargs)
    return sinclair_bounds(mu, graph.num_nodes, eps)
