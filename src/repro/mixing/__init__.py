"""Mixing-time measurement: sampling method and spectral bounds."""

from repro.mixing.sampling import (
    MixingProfile,
    is_fast_mixing,
    mixing_time_from_profile,
    sampled_mixing_profile,
    sampled_mixing_time,
)
from repro.mixing.spectral import (
    MixingBounds,
    normalized_adjacency,
    power_iteration_slem,
    sinclair_bounds,
    slem,
    spectral_gap,
    spectral_mixing_time,
)
from repro.mixing.trust import (
    ModulatedOperator,
    mixing_cost_of_trust,
    modulated_mixing_profile,
    modulated_transition_matrix,
)

__all__ = [
    "MixingProfile",
    "sampled_mixing_profile",
    "mixing_time_from_profile",
    "sampled_mixing_time",
    "is_fast_mixing",
    "slem",
    "power_iteration_slem",
    "spectral_gap",
    "normalized_adjacency",
    "MixingBounds",
    "sinclair_bounds",
    "spectral_mixing_time",
    "ModulatedOperator",
    "modulated_transition_matrix",
    "modulated_mixing_profile",
    "mixing_cost_of_trust",
]
